// Package session is the stateful what-if layer over the tree
// engines: open a driven tree once, stream value edits, and read
// updated per-sink delays after each for far less than a from-scratch
// analysis. It wraps rlctree.Incremental — which owns the three fast
// paths (memoized closed form, frozen-ordering exact MNA, frozen-basis
// reduced model with a certified envelope) — with the concerns the
// callers above it share: serialized access, atomic edit batches, a
// per-engine result cache for repeated reads of an unchanged state,
// and a closed flag for lifecycle owners (the HTTP layer's TTL
// eviction).
//
// Determinism: a session is driven by its edit sequence alone. The
// same Open + the same edits yield byte-identical Result values at any
// GOMAXPROCS setting and any server worker count, and the closed and
// MNA engines are bit-identical to a cold rlctree.Analyze of the
// edited tree — the property the HTTP and conformance layers assert.
// The reduced engine answers through the basis frozen at open time
// (certified-tolerance contract, not bit-identity with a cold reduced
// build; its exact fallback IS bit-identical to cold MNA).
package session

import (
	"context"
	"errors"
	"fmt"

	"rlckit/internal/rlctree"
)

// ErrClosed reports an operation on a closed session.
var ErrClosed = errors.New("session: closed")

// Edit ops.
const (
	OpBranch = "branch" // set a branch's series R and L
	OpLoad   = "load"   // set a sink's load capacitance
	OpDriver = "driver" // set the driver (Rtr, V)
)

// Edit is one what-if edit, in the wire shape the HTTP layer and
// cmd/whatif replay (units follow the tree wire format: Ω, H, F,
// volts).
type Edit struct {
	Op   string  `json:"op"`
	Node int     `json:"node,omitempty"`
	R    float64 `json:"r,omitempty"`
	L    float64 `json:"l,omitempty"`
	CL   float64 `json:"cl,omitempty"`
	Rtr  float64 `json:"rtr,omitempty"`
	V    float64 `json:"v,omitempty"`
}

// Session is an open what-if analysis. Safe for concurrent use; every
// method serializes on the session lock.
type Session struct {
	// The lock is deliberately coarse: an edit is microseconds and a
	// result read is the engine run itself — interleaving partial edits
	// with reads would break the edit-sequence determinism contract.
	mu        chan struct{} // 1-buffered mutex (acquired in lock)
	inc       *rlctree.Incremental
	gen       uint64
	history   [][]Edit
	cache     map[rlctree.Engine]cached
	cacheHits int
	closed    bool
}

type cached struct {
	gen uint64
	res *rlctree.Result
}

// Stats reports a session's path decisions: the incremental engine's
// counters plus the session-level result cache.
type Stats struct {
	rlctree.IncStats
	// Gen counts accepted edits (the state generation); CacheHits
	// result reads served from the per-engine cache without touching an
	// engine.
	Gen       uint64
	CacheHits int
}

// Open starts a what-if session over a copy of the tree; the caller's
// tree is not retained. cfg.Engine is ignored — every Result names its
// engine explicitly.
func Open(t *rlctree.Tree, d rlctree.Drive, cfg rlctree.Config) (*Session, error) {
	inc, err := rlctree.NewIncremental(t, d, cfg)
	if err != nil {
		return nil, err
	}
	s := &Session{
		mu:    make(chan struct{}, 1),
		inc:   inc,
		cache: make(map[rlctree.Engine]cached),
	}
	return s, nil
}

func (s *Session) lock()   { s.mu <- struct{}{} }
func (s *Session) unlock() { <-s.mu }

// Apply applies a batch of edits atomically: on the first invalid edit
// the already-applied prefix is rolled back (value-exact inverse
// edits) and the error names the offending index. A failed Apply
// leaves the analysis state unchanged; the rolled-back edits still
// count in the incremental engine's Edits statistic, and a rolled-back
// structural edit may still cost one rebuild on the next read.
func (s *Session) Apply(edits []Edit) error {
	s.lock()
	defer s.unlock()
	if s.closed {
		return ErrClosed
	}
	type undo func() error
	undos := make([]undo, 0, len(edits))
	fail := func(i int, err error) error {
		for j := len(undos) - 1; j >= 0; j-- {
			if uerr := undos[j](); uerr != nil {
				// Inverse edits restore previously-valid values; a failure
				// here means the session state is unreliable.
				s.closed = true
				return fmt.Errorf("session: edit %d failed (%v) and rollback failed: %w", i, err, uerr)
			}
		}
		return fmt.Errorf("session: edit %d: %w", i, err)
	}
	for i, e := range edits {
		switch e.Op {
		case OpBranch:
			r0, l0, _, err := s.inc.Branch(e.Node)
			if err != nil {
				return fail(i, err)
			}
			if err := s.inc.SetBranch(e.Node, e.R, e.L); err != nil {
				return fail(i, err)
			}
			node := e.Node
			undos = append(undos, func() error { return s.inc.SetBranch(node, r0, l0) })
		case OpLoad:
			cl0, err := s.inc.SinkLoad(e.Node)
			if err != nil {
				return fail(i, err)
			}
			if err := s.inc.SetLoad(e.Node, e.CL); err != nil {
				return fail(i, err)
			}
			node := e.Node
			undos = append(undos, func() error { return s.inc.SetLoad(node, cl0) })
		case OpDriver:
			d0 := s.inc.Drive()
			if err := s.inc.SetDriver(rlctree.Drive{Rtr: e.Rtr, V: e.V}); err != nil {
				return fail(i, err)
			}
			undos = append(undos, func() error { return s.inc.SetDriver(d0) })
		default:
			return fail(i, fmt.Errorf("unknown op %q", e.Op))
		}
	}
	if len(edits) > 0 {
		s.gen++
		s.history = append(s.history, append([]Edit(nil), edits...))
	}
	return nil
}

// History returns a copy of every successfully applied edit batch, in
// application order. Because a session is driven by its edit sequence
// alone, Open with the same tree/drive/config followed by Apply of
// each batch reproduces this session's state — and therefore its
// Result bytes — exactly. This is the replay recipe the serving
// layer's crash-recovery journal is built on.
func (s *Session) History() [][]Edit {
	s.lock()
	defer s.unlock()
	out := make([][]Edit, len(s.history))
	for i, b := range s.history {
		out[i] = append([]Edit(nil), b...)
	}
	return out
}

// Result reads the per-sink delay table of the current state with the
// given engine, reusing the incremental fast paths — and, for a repeat
// read of an unchanged state, the cached result. The returned Result
// is shared and must be treated as read-only.
func (s *Session) Result(ctx context.Context, engine rlctree.Engine) (*rlctree.Result, error) {
	s.lock()
	defer s.unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if c, ok := s.cache[engine]; ok && c.gen == s.gen {
		s.cacheHits++
		return c.res, nil
	}
	res, err := s.inc.Analyze(ctx, engine)
	if err != nil {
		return nil, err
	}
	s.cache[engine] = cached{gen: s.gen, res: res}
	return res, nil
}

// Tree returns a copy of the current (edited) tree — the net a cold
// analysis must be given to reproduce Result.
func (s *Session) Tree() *rlctree.Tree {
	s.lock()
	defer s.unlock()
	return s.inc.Tree()
}

// Drive returns the current drive.
func (s *Session) Drive() rlctree.Drive {
	s.lock()
	defer s.unlock()
	return s.inc.Drive()
}

// Stats returns the session's counters.
func (s *Session) Stats() Stats {
	s.lock()
	defer s.unlock()
	return Stats{IncStats: s.inc.Stats(), Gen: s.gen, CacheHits: s.cacheHits}
}

// Close marks the session closed; subsequent operations return
// ErrClosed. Closing twice is a no-op.
func (s *Session) Close() {
	s.lock()
	defer s.unlock()
	s.closed = true
}
