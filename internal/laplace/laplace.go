// Package laplace numerically inverts Laplace transforms, providing the
// third independent reference engine for rlckit's delay validation: it
// evaluates the *exact* distributed-line transfer function (internal/
// tline.ExactTF) in the time domain without any lumped approximation.
//
// Two methods from the Abate–Whitt unified framework are implemented:
//
//   - Euler: Fourier-series inversion with Euler summation acceleration.
//     Robust for oscillatory originals (underdamped RLC responses), which
//     is why it is the default here.
//   - Talbot: deformed Bromwich contour. Extremely accurate for smooth,
//     non-oscillatory originals (overdamped responses); used as a
//     cross-check where it applies.
//
// Both approximate f(t) from samples of F(s) at method-specific complex
// nodes scaled by 1/t.
package laplace

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
)

// F is a Laplace-domain function F(s).
type F func(s complex128) complex128

// DefaultM is the default term parameter; Euler uses 2M+1 transform
// evaluations per time point and yields roughly 0.6·M significant digits
// in double precision (diminishing beyond M ≈ 25 due to roundoff).
const DefaultM = 18

// Euler inverts F at time t > 0 using the Euler algorithm with parameter
// m (pass 0 for DefaultM).
func Euler(f F, t float64, m int) (float64, error) {
	if t <= 0 {
		return 0, fmt.Errorf("laplace: Euler needs t > 0, got %g", t)
	}
	if m <= 0 {
		m = DefaultM
	}
	if m > 30 {
		return 0, fmt.Errorf("laplace: Euler m = %d exceeds double-precision useful range (max 30)", m)
	}
	xi := eulerXi(m)
	a := float64(m) * math.Ln10 / 3
	scale := math.Pow(10, float64(m)/3)
	sum := 0.0
	sign := 1.0
	for k := 0; k <= 2*m; k++ {
		beta := complex(a, math.Pi*float64(k))
		v := real(f(beta / complex(t, 0)))
		sum += sign * xi[k] * v
		sign = -sign
	}
	return scale * sum / t, nil
}

// eulerXi returns the Euler-summation weights ξ_0..ξ_{2M}.
func eulerXi(m int) []float64 {
	xi := make([]float64, 2*m+1)
	xi[0] = 0.5
	for k := 1; k <= m; k++ {
		xi[k] = 1
	}
	xi[2*m] = math.Pow(2, -float64(m))
	// Binomial recurrence: ξ_{2M−j} = ξ_{2M−j+1} + 2^{−M}·C(M, j).
	binom := 1.0
	for j := 1; j < m; j++ {
		binom = binom * float64(m-j+1) / float64(j)
		xi[2*m-j] = xi[2*m-j+1] + math.Pow(2, -float64(m))*binom
	}
	return xi
}

// Talbot inverts F at time t > 0 using Talbot's fixed contour with m
// nodes (pass 0 for a default of 32). Use only for originals without
// sustained oscillation; poles close to the imaginary axis violate the
// contour assumptions and degrade accuracy.
func Talbot(f F, t float64, m int) (float64, error) {
	if t <= 0 {
		return 0, fmt.Errorf("laplace: Talbot needs t > 0, got %g", t)
	}
	if m <= 0 {
		m = 32
	}
	mf := float64(m)
	sum := complex(0, 0)
	for k := 0; k < m; k++ {
		var delta, gamma complex128
		if k == 0 {
			delta = complex(2*mf/5, 0)
			gamma = complex(0.5, 0) * cmplx.Exp(delta)
		} else {
			kf := float64(k)
			theta := kf * math.Pi / mf
			cot := math.Cos(theta) / math.Sin(theta)
			delta = complex(2*kf*math.Pi/5*cot, 2*kf*math.Pi/5)
			gamma = complex(1, kf*math.Pi/mf*(1+cot*cot)) + complex(0, -cot)
			gamma *= cmplx.Exp(delta)
		}
		sum += gamma * f(delta/complex(t, 0))
	}
	return 2 / (5 * t) * real(sum), nil
}

// StepResponse wraps a transfer function H(s) as its unit-step time
// response via Euler inversion of H(s)/s.
func StepResponse(h F, m int) func(t float64) (float64, error) {
	return func(t float64) (float64, error) {
		return Euler(func(s complex128) complex128 { return h(s) / s }, t, m)
	}
}

// CrossingTime finds the first time the step response of H crosses level
// rising, searched on [tLo, tHi] by bisection on a dense pre-scan. It is
// the 50%-delay extractor used on the exact line transfer function.
func CrossingTime(h F, level, tLo, tHi float64, m int) (float64, error) {
	if tLo <= 0 || tHi <= tLo {
		return 0, fmt.Errorf("laplace: bad crossing window [%g, %g]", tLo, tHi)
	}
	step := StepResponse(h, m)
	const scan = 400
	prevT := tLo
	prevV, err := step(prevT)
	if err != nil {
		return 0, err
	}
	if prevV >= level {
		return 0, fmt.Errorf("laplace: response already %g >= %g at window start", prevV, level)
	}
	for i := 1; i <= scan; i++ {
		t := tLo + (tHi-tLo)*float64(i)/scan
		v, err := step(t)
		if err != nil {
			return 0, err
		}
		if v >= level {
			// Bisect in (prevT, t].
			g := func(x float64) float64 {
				y, err2 := step(x)
				if err2 != nil {
					err = err2
				}
				return y - level
			}
			x, berr := bisectMonotone(g, prevT, t)
			if err != nil {
				return 0, err
			}
			return x, berr
		}
		prevT, prevV = t, v
	}
	return 0, errors.New("laplace: no crossing in window")
}

// bisectMonotone is a local bisection that tolerates the slight numeric
// noise of inversion output near the crossing.
func bisectMonotone(g func(float64) float64, a, b float64) (float64, error) {
	fa := g(a)
	fb := g(b)
	if fa > 0 || fb < 0 {
		return 0, fmt.Errorf("laplace: lost bracket [%g, %g] (g: %g, %g)", a, b, fa, fb)
	}
	for i := 0; i < 100; i++ {
		mid := (a + b) / 2
		if g(mid) >= 0 {
			b = mid
		} else {
			a = mid
		}
		if (b - a) <= 1e-12*b {
			break
		}
	}
	return (a + b) / 2, nil
}

// GaverStehfest inverts F at t > 0 with the Gaver–Stehfest algorithm of
// even order n (pass 0 for 14). It uses only real evaluations of F,
// which makes it attractive when F is expensive on complex arguments —
// but it is reliable only for smooth, non-oscillatory originals; for
// underdamped responses use Euler. It is provided as a third
// cross-check for overdamped lines.
func GaverStehfest(f F, t float64, n int) (float64, error) {
	if t <= 0 {
		return 0, fmt.Errorf("laplace: Gaver-Stehfest needs t > 0, got %g", t)
	}
	if n <= 0 {
		n = 14
	}
	if n%2 != 0 || n > 20 {
		return 0, fmt.Errorf("laplace: Gaver-Stehfest order must be even and <= 20, got %d", n)
	}
	w := stehfestWeights(n)
	ln2t := math.Ln2 / t
	sum := 0.0
	for k := 1; k <= n; k++ {
		sum += w[k-1] * real(f(complex(float64(k)*ln2t, 0)))
	}
	return ln2t * sum, nil
}

// stehfestWeights returns the classic Stehfest coefficients V_k.
func stehfestWeights(n int) []float64 {
	half := n / 2
	v := make([]float64, n)
	for k := 1; k <= n; k++ {
		sign := 1.0
		if (k+half)%2 != 0 {
			sign = -1
		}
		lo := (k + 1) / 2
		hi := k
		if hi > half {
			hi = half
		}
		s := 0.0
		for j := lo; j <= hi; j++ {
			num := math.Pow(float64(j), float64(half)) * fact(2*j)
			den := fact(half-j) * fact(j) * fact(j-1) * fact(k-j) * fact(2*j-k)
			s += num / den
		}
		v[k-1] = sign * s
	}
	return v
}

func fact(n int) float64 {
	f := 1.0
	for i := 2; i <= n; i++ {
		f *= float64(i)
	}
	return f
}
