package laplace

import (
	"math"
	"testing"
)

func TestEulerExponential(t *testing.T) {
	// F(s) = 1/(s+a) ⇒ f(t) = e^{−at}.
	a := 1.5
	f := func(s complex128) complex128 { return 1 / (s + complex(a, 0)) }
	for _, tt := range []float64{0.1, 0.5, 1, 2, 5} {
		got, err := Euler(f, tt, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Exp(-a * tt)
		if math.Abs(got-want) > 1e-8 {
			t.Errorf("f(%g) = %.12g, want %.12g", tt, got, want)
		}
	}
}

func TestEulerOscillatory(t *testing.T) {
	// F(s) = ω/(s²+ω²) ⇒ sin(ωt): the case Talbot cannot handle.
	w := 3.0
	f := func(s complex128) complex128 { return complex(w, 0) / (s*s + complex(w*w, 0)) }
	for _, tt := range []float64{0.2, 1, 2.5, 4} {
		got, err := Euler(f, tt, 20)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Sin(w * tt)
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("sin: f(%g) = %.10g, want %.10g", tt, got, want)
		}
	}
}

func TestEulerStepOfSecondOrder(t *testing.T) {
	// Step response of H = 1/(1+2ζs/ωn+s²/ωn²) with ζ=0.3.
	zeta, wn := 0.3, 2.0
	h := func(s complex128) complex128 {
		return 1 / (1 + complex(2*zeta/wn, 0)*s + s*s*complex(1/(wn*wn), 0))
	}
	wd := wn * math.Sqrt(1-zeta*zeta)
	analytic := func(tt float64) float64 {
		e := math.Exp(-zeta * wn * tt)
		return 1 - e*(math.Cos(wd*tt)+zeta/math.Sqrt(1-zeta*zeta)*math.Sin(wd*tt))
	}
	step := StepResponse(h, 0)
	for tt := 0.1; tt < 10; tt += 0.37 {
		got, err := step(tt)
		if err != nil {
			t.Fatal(err)
		}
		if want := analytic(tt); math.Abs(got-want) > 1e-7 {
			t.Fatalf("v(%g) = %.10g, want %.10g", tt, got, want)
		}
	}
}

func TestEulerValidation(t *testing.T) {
	f := func(s complex128) complex128 { return 1 / s }
	if _, err := Euler(f, 0, 0); err == nil {
		t.Error("t=0 accepted")
	}
	if _, err := Euler(f, -1, 0); err == nil {
		t.Error("t<0 accepted")
	}
	if _, err := Euler(f, 1, 99); err == nil {
		t.Error("huge m accepted")
	}
}

func TestTalbotSmooth(t *testing.T) {
	// Overdamped: f(t) = t·e^{−t} ⇔ 1/(s+1)².
	f := func(s complex128) complex128 { p := s + 1; return 1 / (p * p) }
	for _, tt := range []float64{0.3, 1, 2, 4} {
		got, err := Talbot(f, tt, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := tt * math.Exp(-tt)
		if math.Abs(got-want) > 1e-10 {
			t.Errorf("f(%g) = %.12g, want %.12g", tt, got, want)
		}
	}
	if _, err := Talbot(f, 0, 0); err == nil {
		t.Error("t=0 accepted")
	}
}

func TestTalbotAgreesWithEulerOverdamped(t *testing.T) {
	h := func(s complex128) complex128 {
		return 1 / ((s + 1) * (s + complex(3, 0)) * (s + complex(10, 0)))
	}
	for _, tt := range []float64{0.2, 0.7, 1.9} {
		e, err1 := Euler(h, tt, 0)
		ta, err2 := Talbot(h, tt, 0)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if math.Abs(e-ta) > 1e-8 {
			t.Errorf("t=%g: Euler %.12g vs Talbot %.12g", tt, e, ta)
		}
	}
}

func TestCrossingTimeRC(t *testing.T) {
	// H = 1/(1+s): 50% crossing of step response at ln 2.
	h := func(s complex128) complex128 { return 1 / (1 + s) }
	x, err := CrossingTime(h, 0.5, 0.01, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-math.Ln2) > 1e-6 {
		t.Errorf("crossing = %.9g, want ln2 = %.9g", x, math.Ln2)
	}
}

func TestCrossingTimeErrors(t *testing.T) {
	h := func(s complex128) complex128 { return 1 / (1 + s) }
	if _, err := CrossingTime(h, 0.5, 0, 1, 0); err == nil {
		t.Error("tLo=0 accepted")
	}
	if _, err := CrossingTime(h, 0.5, 2, 1, 0); err == nil {
		t.Error("reversed window accepted")
	}
	// Level never reached in window.
	if _, err := CrossingTime(h, 0.999999, 0.01, 0.02, 0); err == nil {
		t.Error("no-crossing window accepted")
	}
	// Already above level at window start.
	if _, err := CrossingTime(h, 0.1, 3, 5, 0); err == nil {
		t.Error("late window accepted")
	}
}

func TestEulerTimeScalingProperty(t *testing.T) {
	// L{f(kt)} = F(s/k)/k: check on the exponential for several k.
	a := 2.0
	base := func(s complex128) complex128 { return 1 / (s + complex(a, 0)) }
	for _, k := range []float64{0.5, 2, 7} {
		scaled := func(s complex128) complex128 {
			return base(s/complex(k, 0)) / complex(k, 0)
		}
		for _, tt := range []float64{0.3, 1.1} {
			got, err := Euler(scaled, tt, 0)
			if err != nil {
				t.Fatal(err)
			}
			want := math.Exp(-a * k * tt)
			if math.Abs(got-want) > 1e-8 {
				t.Errorf("k=%g f(%g) = %.10g, want %.10g", k, tt, got, want)
			}
		}
	}
}

func TestGaverStehfestSmooth(t *testing.T) {
	// e^{−2t} and t·e^{−t}: smooth originals, high accuracy expected.
	f1 := func(s complex128) complex128 { return 1 / (s + 2) }
	f2 := func(s complex128) complex128 { p := s + 1; return 1 / (p * p) }
	for _, tt := range []float64{0.3, 1, 2.5} {
		g1, err := GaverStehfest(f1, tt, 0)
		if err != nil {
			t.Fatal(err)
		}
		if want := math.Exp(-2 * tt); math.Abs(g1-want) > 5e-5 {
			t.Errorf("exp: f(%g) = %.10g, want %.10g", tt, g1, want)
		}
		g2, err := GaverStehfest(f2, tt, 12)
		if err != nil {
			t.Fatal(err)
		}
		if want := tt * math.Exp(-tt); math.Abs(g2-want) > 2e-4 {
			t.Errorf("t·exp: f(%g) = %.10g, want %.10g", tt, g2, want)
		}
	}
}

func TestGaverStehfestAgreesWithEulerOverdamped(t *testing.T) {
	h := func(s complex128) complex128 {
		return 1 / ((s + 1) * (s + complex(4, 0)))
	}
	for _, tt := range []float64{0.4, 1.2} {
		e, err1 := Euler(h, tt, 0)
		g, err2 := GaverStehfest(h, tt, 0)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if math.Abs(e-g) > 5e-5 {
			t.Errorf("t=%g: Euler %.10g vs Stehfest %.10g", tt, e, g)
		}
	}
}

func TestGaverStehfestValidation(t *testing.T) {
	f := func(s complex128) complex128 { return 1 / s }
	if _, err := GaverStehfest(f, 0, 0); err == nil {
		t.Error("t=0 accepted")
	}
	if _, err := GaverStehfest(f, 1, 13); err == nil {
		t.Error("odd order accepted")
	}
	if _, err := GaverStehfest(f, 1, 22); err == nil {
		t.Error("huge order accepted")
	}
}

func TestGaverStehfestFailsOnOscillatory(t *testing.T) {
	// Documented limitation: sin(3t) at a peak is badly wrong — this
	// test pins the *reason* Euler is the default engine.
	w := 3.0
	f := func(s complex128) complex128 { return complex(w, 0) / (s*s + complex(w*w, 0)) }
	tt := math.Pi / 2 / w * 3 // near a negative peak
	g, err := GaverStehfest(f, tt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-math.Sin(w*tt)) < 0.1 {
		t.Logf("note: Stehfest unexpectedly accurate on oscillation (%g vs %g)", g, math.Sin(w*tt))
	}
}
