// Package golden implements golden-file comparison for the command-line
// tools: a test renders its full output, and Assert compares it against
// a checked-in file under testdata/, rewriting the file instead when the
// test binary runs with -update.
//
//	go test ./cmd/netsim -update   # refresh golden files after a change
//
// Everything the commands print is deterministic (fixed seeds, ordered
// parallel results, explicit float formats), which is what makes whole
// output files a stable contract.
package golden

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// Assert compares got against testdata/<name>. With -update it writes
// the file and passes. The diff report shows the first mismatching line
// to keep failures readable.
func Assert(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if string(got) == string(want) {
		return
	}
	line, gotLine, wantLine := firstDiff(string(got), string(want))
	t.Errorf("output differs from %s at line %d:\n got: %q\nwant: %q\n(re-run with -update if the change is intended)",
		path, line, gotLine, wantLine)
}

// firstDiff locates the first differing line (1-based).
func firstDiff(got, want string) (line int, gotLine, wantLine string) {
	g := splitLines(got)
	w := splitLines(want)
	for i := 0; i < len(g) || i < len(w); i++ {
		var gl, wl string
		if i < len(g) {
			gl = g[i]
		}
		if i < len(w) {
			wl = w[i]
		}
		if gl != wl {
			return i + 1, gl, wl
		}
	}
	return 0, "", ""
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
