package mor

import (
	"fmt"
	"math"

	"rlckit/internal/numeric"
)

// Certify grades the model's *current* pencil (whatever Reproject /
// UsePencil installed) against exact full-order solves of a value-set
// laid out on the frozen triplet structure: gv and cv are value arrays
// in freeze-time entry order (the same layout ProjectValues consumes),
// kl/ku the band widths of the frozen ordering, and omegas the
// frequencies (rad/s) to probe. It returns the worst output error in
// percent of the exact response peak — the same metric Build's
// validation reports in Info.EstErrPct.
//
// This is the re-certification step of an incremental what-if loop:
// when an edit pushes element values outside the anchor-bracketed
// envelope the basis was certified for, the caller re-runs the exact
// probe solves against the recombined pencil before trusting it — and
// falls back to the exact engine when the error exceeds its tolerance.
// Cost: one complex band factorization per omega, independent of q.
func (m *Model) Certify(gv, cv []float64, kl, ku int, omegas []float64) (float64, error) {
	if len(gv) != len(m.gpi) || len(cv) != len(m.cpi) {
		return 0, fmt.Errorf("mor: Certify structure mismatch (G %d vs %d, C %d vs %d entries)",
			len(gv), len(m.gpi), len(cv), len(m.cpi))
	}
	if len(omegas) == 0 {
		return 0, fmt.Errorf("mor: Certify needs at least one frequency")
	}
	bz := make([]complex128, m.n)
	for _, in := range m.inputs {
		for k, r := range in.Rows {
			bz[r] += complex(in.Vals[k], 0)
		}
	}
	x := make([]complex128, m.n)
	yr := make([]complex128, m.nOut)
	eval := m.NewACEval()
	a := numeric.NewCBandMatrix(m.n, kl, ku)
	var lu numeric.CBandLU
	peak, worst := 0.0, 0.0
	for _, w := range omegas {
		a.Zero()
		for k, i := range m.gpi {
			a.Add(i, m.gpj[k], complex(gv[k], 0))
		}
		for k, i := range m.cpi {
			a.Add(i, m.cpj[k], complex(0, w*cv[k]))
		}
		if err := numeric.FactorCBandLUInto(&lu, a); err != nil {
			return 0, fmt.Errorf("mor: exact certification solve at ω=%g: %w", w, err)
		}
		lu.SolveTo(x, bz)
		if err := m.evalPencil(eval, m.Gr, m.Cr, w, yr); err != nil {
			return 0, fmt.Errorf("%w: reduced system singular at certification ω=%g", ErrNoConverge, w)
		}
		for k, r := range m.outputs {
			ye := x[r]
			if mag := math.Hypot(real(ye), imag(ye)); mag > peak {
				peak = mag
			}
			d := yr[k] - ye
			if mag := math.Hypot(real(d), imag(d)); mag > worst {
				worst = mag
			}
		}
	}
	if peak == 0 {
		return 0, fmt.Errorf("%w: exact response is identically zero at certification frequencies", ErrNoConverge)
	}
	return 100 * worst / peak, nil
}

// ProjectEntrySpan accumulates the congruence projection of a few
// structure entries into dst (q×q row-major, caller-zeroed):
//
//	dst += Σ_k vals[k] · outer(Vrow(pi[k]), Vrow(pj[k]))
//
// where the ks are the given entry indices into the frozen G structure
// (onC false) or C structure (onC true). Because the projection is
// linear in the matrix values, a single element's entries project to a
// q×q block in O(entries·q²) — the building block for per-element
// incremental pencils: an edit re-targets the reduced pencil with one
// block delta instead of a full O(nnz·q + n·q²) reprojection.
func (m *Model) ProjectEntrySpan(entries []int, vals []float64, onC bool, dst []float64) error {
	pi, pj := m.gpi, m.gpj
	if onC {
		pi, pj = m.cpi, m.cpj
	}
	q := m.q
	if len(dst) != q*q {
		return fmt.Errorf("mor: ProjectEntrySpan needs a %d×%d destination", q, q)
	}
	n := m.n
	for _, k := range entries {
		if k < 0 || k >= len(pi) {
			return fmt.Errorf("mor: ProjectEntrySpan entry %d out of range [0, %d)", k, len(pi))
		}
		v := vals[k]
		if v == 0 {
			continue
		}
		ri, rj := pi[k], pj[k]
		for a := 0; a < q; a++ {
			va := v * m.v[a*n+ri]
			if va == 0 {
				continue
			}
			row := dst[a*q : (a+1)*q]
			for b := 0; b < q; b++ {
				row[b] += va * m.v[b*n+rj]
			}
		}
	}
	return nil
}
