package mor

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	const n, r, c = 60, 100.0, 1e-13
	sys := rcLadder(n, r, c)
	opts := Options{Omegas: ladderOmegas(r, c, n)}
	mdl, err := Build(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := Fingerprint(sys, opts)
	if err != nil {
		t.Fatal(err)
	}

	enc := EncodeModel(mdl, fp)
	got, err := DecodeModel(enc, fp)
	if err != nil {
		t.Fatalf("DecodeModel: %v", err)
	}
	if got.Info != mdl.Info {
		t.Fatalf("Info = %+v, want %+v", got.Info, mdl.Info)
	}
	if got.Q() != mdl.Q() || got.NumInputs() != mdl.NumInputs() || got.NumOutputs() != mdl.NumOutputs() {
		t.Fatal("dimension accessors differ after decode")
	}

	// The encoding is canonical: re-encoding the decoded model must
	// reproduce the bytes exactly.
	if !bytes.Equal(EncodeModel(got, fp), enc) {
		t.Fatal("encode(decode(enc)) != enc")
	}

	// The decoded model must evaluate bit-identically to the original —
	// this is what lets a warm-started server promise byte-identical
	// responses.
	evA, evB := mdl.NewACEval(), got.NewACEval()
	outA, outB := make([]complex128, 1), make([]complex128, 1)
	for i := 0; i < 25; i++ {
		w := opts.Omegas[0] * math.Pow(opts.Omegas[len(opts.Omegas)-1]/opts.Omegas[0], float64(i)/24)
		if err := mdl.EvalAC(evA, w, outA); err != nil {
			t.Fatal(err)
		}
		if err := got.EvalAC(evB, w, outB); err != nil {
			t.Fatal(err)
		}
		if outA[0] != outB[0] {
			t.Fatalf("AC eval differs at ω=%g: %v vs %v", w, outA[0], outB[0])
		}
	}

	trA, err := mdl.NewTransient(1e-12)
	if err != nil {
		t.Fatal(err)
	}
	trB, err := got.NewTransient(1e-12)
	if err != nil {
		t.Fatal(err)
	}
	u := []float64{1}
	for s := 0; s < 200; s++ {
		trA.Step(u)
		trB.Step(u)
		if a, b := trA.Output(0), trB.Output(0); a != b {
			t.Fatalf("transient differs at step %d: %g vs %g", s, a, b)
		}
	}
}

func TestDecodedModelSupportsReprojection(t *testing.T) {
	const n, r, c = 40, 150.0, 1e-13
	sys := rcLadder(n, r, c)
	opts := Options{Omegas: ladderOmegas(r, c, n)}
	mdl, err := Build(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	fp, _ := Fingerprint(sys, opts)
	got, err := DecodeModel(EncodeModel(mdl, fp), fp)
	if err != nil {
		t.Fatal(err)
	}

	// Mutable-state paths must work on a decoded model too: reproject
	// both models at scaled values and compare evaluations bitwise.
	gs := append([]float64(nil), sys.G.V...)
	cs := append([]float64(nil), sys.C.V...)
	for i := range gs {
		gs[i] *= 1.07
	}
	for i := range cs {
		cs[i] *= 0.93
	}
	g2 := *sys.G
	c2 := *sys.C
	g2.V, c2.V = gs, cs
	if err := mdl.Reproject(&g2, &c2); err != nil {
		t.Fatal(err)
	}
	if err := got.Reproject(&g2, &c2); err != nil {
		t.Fatal(err)
	}
	evA, evB := mdl.NewACEval(), got.NewACEval()
	outA, outB := make([]complex128, 1), make([]complex128, 1)
	w := opts.Omegas[len(opts.Omegas)/2]
	if err := mdl.EvalAC(evA, w, outA); err != nil {
		t.Fatal(err)
	}
	if err := got.EvalAC(evB, w, outB); err != nil {
		t.Fatal(err)
	}
	if outA[0] != outB[0] {
		t.Fatalf("reprojected eval differs: %v vs %v", outA[0], outB[0])
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	const n, r, c = 20, 100.0, 1e-13
	sys := rcLadder(n, r, c)
	opts := Options{Omegas: ladderOmegas(r, c, n)}
	base, err := Fingerprint(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	if again, _ := Fingerprint(sys, opts); again != base {
		t.Fatal("fingerprint is not deterministic")
	}

	// Any change to values or options must move the fingerprint.
	sys2 := rcLadder(n, r*1.000001, c)
	if fp, _ := Fingerprint(sys2, opts); fp == base {
		t.Fatal("value change did not move the fingerprint")
	}
	if fp, _ := Fingerprint(sys, Options{Omegas: opts.Omegas, MaxOrder: 16}); fp == base {
		t.Fatal("option change did not move the fingerprint")
	}
	// Ctx is excluded by contract; zero-vs-defaulted options match.
	if fp, _ := Fingerprint(sys, Options{Omegas: opts.Omegas, MaxOrder: 32, Tol: 5e-4, ValTol: 5e-3}); fp != base {
		t.Fatal("explicitly defaulted options moved the fingerprint")
	}
}

func TestDecodeRejectsMismatchAndCorruption(t *testing.T) {
	const n, r, c = 20, 100.0, 1e-13
	sys := rcLadder(n, r, c)
	opts := Options{Omegas: ladderOmegas(r, c, n)}
	mdl, err := Build(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	fp, _ := Fingerprint(sys, opts)
	enc := EncodeModel(mdl, fp)

	if _, err := DecodeModel(enc, fp^1); !errors.Is(err, ErrPencilMismatch) {
		t.Fatalf("wrong fingerprint decoded: %v", err)
	}
	if _, err := DecodeModel(nil, fp); err == nil {
		t.Fatal("nil bytes decoded")
	}
	if _, err := DecodeModel(enc[:len(enc)-3], fp); err == nil {
		t.Fatal("truncated bytes decoded")
	}
	if _, err := DecodeModel(append(append([]byte(nil), enc...), 0), fp); err == nil {
		t.Fatal("trailing garbage decoded")
	}
	// Flipping any structural byte after the fingerprint must be caught
	// by a bounds or consistency check — never a panic, never a model
	// with out-of-range indices.
	for off := 17; off < len(enc); off += 97 {
		mut := append([]byte(nil), enc...)
		mut[off] ^= 0x10
		m, err := DecodeModel(mut, fp)
		if err != nil {
			continue
		}
		// A float flip can decode fine; the structure must still be sane.
		if m.Q() < 1 || m.NumInputs() < 1 || m.NumOutputs() < 1 {
			t.Fatalf("byte flip at %d produced an inconsistent model", off)
		}
	}
}
