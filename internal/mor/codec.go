package mor

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"math"

	"rlckit/internal/numeric"
)

var le = binary.LittleEndian

// Pencil persistence: a certified Model serializes to a self-contained
// byte string so the serving layer can park it in the warm-start store
// and rebuild an identical evaluator after a restart, skipping the
// Arnoldi build entirely. Two properties make reuse safe:
//
//   - The encoding carries a fingerprint of the exact system and
//     options the model was built from (Fingerprint); DecodeModel
//     refuses bytes whose fingerprint does not match the system being
//     served, so even a mis-keyed store entry can never evaluate the
//     wrong circuit.
//   - The encoding is canonical — EncodeModel of a decoded model
//     reproduces the input bytes — and DecodeModel revalidates every
//     structural invariant (dimensions, index ranges, slice lengths),
//     so corrupt bytes fail loudly instead of evaluating garbage.
//
// A decoded Model is private to its caller: Models carry mutable
// pencil state (Reproject/UsePencil), so consumers decode their own
// copy rather than sharing one.

const (
	codecMagic   uint64 = 0x31524f4d4b4c52 // "RLKMOR1" little-endian
	codecVersion uint8  = 1

	// Decode sanity caps, far above anything the engines build but low
	// enough that a corrupt length field cannot force a huge allocation
	// before the bounds checks catch it.
	codecMaxN = 1 << 22
	codecMaxQ = 1 << 12
)

// ErrPencilMismatch reports that a serialized pencil was built from a
// different system or options than the one it is being reused for.
var ErrPencilMismatch = errors.New("mor: pencil fingerprint mismatch")

var errCodec = errors.New("mor: malformed pencil encoding")

var crcTable = crc64.MakeTable(crc64.ECMA)

// Fingerprint hashes everything a Build's result depends on — the full
// system (structure, values, permutation, inputs, outputs, anchors)
// and the defaulted options (expansion, tolerances, order cap) — so
// equal fingerprints mean an encoded pencil is a valid stand-in for
// running Build again. Options.Ctx is excluded: cancellation changes
// whether a build finishes, never what it builds.
func Fingerprint(sys *System, opts Options) (uint64, error) {
	opts, err := opts.withDefaults(sys.N)
	if err != nil {
		return 0, err
	}
	h := crc64.New(crcTable)
	var buf [8]byte
	w64 := func(v uint64) {
		le.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wi := func(v int) { w64(uint64(int64(v))) }
	wf := func(v float64) { w64(math.Float64bits(v)) }
	wis := func(s []int) {
		wi(len(s))
		for _, v := range s {
			wi(v)
		}
	}
	wfs := func(s []float64) {
		wi(len(s))
		for _, v := range s {
			wf(v)
		}
	}
	wb := func(v bool) {
		if v {
			w64(1)
		} else {
			w64(0)
		}
	}

	w64(codecMagic)
	wi(sys.N)
	wi(sys.KL)
	wi(sys.KU)
	wis(sys.Perm)
	wis(sys.G.I)
	wis(sys.G.J)
	wfs(sys.G.V)
	wis(sys.C.I)
	wis(sys.C.J)
	wfs(sys.C.V)
	wi(len(sys.Inputs))
	for _, in := range sys.Inputs {
		wis(in.Rows)
		wfs(in.Vals)
	}
	wis(sys.Outputs)
	wi(len(sys.Anchors))
	for _, a := range sys.Anchors {
		wfs(a.G)
		wfs(a.C)
	}
	wfs(opts.Omegas)
	wf(opts.S0)
	wi(opts.MaxOrder)
	wf(opts.Tol)
	wf(opts.ValTol)
	wb(opts.SkipValidate)
	return h.Sum64(), nil
}

type enc struct{ b []byte }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u64(v uint64) { e.b = le.AppendUint64(e.b, v) }
func (e *enc) i(v int)      { e.u64(uint64(int64(v))) }
func (e *enc) f(v float64)  { e.u64(math.Float64bits(v)) }
func (e *enc) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *enc) ints(s []int) {
	e.i(len(s))
	for _, v := range s {
		e.i(v)
	}
}
func (e *enc) f64s(s []float64) {
	e.i(len(s))
	for _, v := range s {
		e.f(v)
	}
}

// EncodeModel serializes m with its system fingerprint (from
// Fingerprint over the system/options the model was built from). The
// encoding is canonical and versioned.
func EncodeModel(m *Model, fp uint64) []byte {
	e := &enc{b: make([]byte, 0, 64+8*(len(m.v)+len(m.feH)+4*len(m.gpi)))}
	e.u64(codecMagic)
	e.u8(codecVersion)
	e.u64(fp)
	e.i(m.n)
	e.i(m.q)
	e.i(m.m)
	e.i(m.nOut)
	e.f64s(m.v)
	e.ints(m.gpi)
	e.ints(m.gpj)
	e.ints(m.cpi)
	e.ints(m.cpj)
	e.i(len(m.inputs))
	for _, in := range m.inputs {
		e.ints(in.Rows)
		e.f64s(in.Vals)
	}
	e.ints(m.outputs)
	e.f64s(m.Gr.Data)
	e.f64s(m.Cr.Data)
	e.f64s(m.br)
	e.f64s(m.brAgg)
	e.f64s(m.lr)
	e.bool(m.feOK)
	e.f64s(m.feH)
	e.f64s(m.feB)
	e.f64s(m.feL)
	e.i(m.Info.Q)
	e.i(m.Info.N)
	e.f(m.Info.S0)
	e.i(m.Info.Shifts)
	e.i(m.Info.Anchors)
	e.f(m.Info.EstErrPct)
	e.bool(m.Info.Validated)
	e.bool(m.Info.Exhausted)
	return e.b
}

type dec struct{ b []byte }

func (d *dec) u8() (uint8, error) {
	if len(d.b) < 1 {
		return 0, errCodec
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v, nil
}
func (d *dec) u64() (uint64, error) {
	if len(d.b) < 8 {
		return 0, errCodec
	}
	v := le.Uint64(d.b)
	d.b = d.b[8:]
	return v, nil
}
func (d *dec) i() (int, error) {
	v, err := d.u64()
	n := int(int64(v))
	if err == nil && (int64(n) != int64(v) || n < 0) {
		return 0, errCodec
	}
	return n, err
}
func (d *dec) f() (float64, error) {
	v, err := d.u64()
	return math.Float64frombits(v), err
}
func (d *dec) bool() (bool, error) {
	v, err := d.u8()
	if err != nil {
		return false, err
	}
	if v > 1 {
		return false, errCodec
	}
	return v == 1, nil
}

// sliceLen reads a count and checks it against the bytes remaining
// (elemBytes per element) before the caller allocates.
func (d *dec) sliceLen(elemBytes int) (int, error) {
	n, err := d.i()
	if err != nil {
		return 0, err
	}
	if n > len(d.b)/elemBytes {
		return 0, errCodec
	}
	return n, nil
}

func (d *dec) ints() ([]int, error) {
	n, err := d.sliceLen(8)
	if err != nil {
		return nil, err
	}
	s := make([]int, n)
	for i := range s {
		if s[i], err = d.i(); err != nil {
			return nil, err
		}
	}
	return s, nil
}
func (d *dec) f64s() ([]float64, error) {
	n, err := d.sliceLen(8)
	if err != nil {
		return nil, err
	}
	s := make([]float64, n)
	for i := range s {
		if s[i], err = d.f(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// DecodeModel rebuilds a Model from EncodeModel bytes, refusing them
// unless the embedded fingerprint equals fp (ErrPencilMismatch) and
// every structural invariant checks out (dimension consistency, index
// ranges). The returned Model is fully evaluation-ready and private to
// the caller.
func DecodeModel(data []byte, fp uint64) (*Model, error) {
	d := &dec{b: data}
	if magic, err := d.u64(); err != nil || magic != codecMagic {
		return nil, errCodec
	}
	if ver, err := d.u8(); err != nil || ver != codecVersion {
		return nil, fmt.Errorf("%w: unsupported version", errCodec)
	}
	got, err := d.u64()
	if err != nil {
		return nil, errCodec
	}
	if got != fp {
		return nil, ErrPencilMismatch
	}

	m := &Model{}
	geti := func(dst *int) {
		if err == nil {
			*dst, err = d.i()
		}
	}
	getis := func(dst *[]int) {
		if err == nil {
			*dst, err = d.ints()
		}
	}
	getfs := func(dst *[]float64) {
		if err == nil {
			*dst, err = d.f64s()
		}
	}
	getb := func(dst *bool) {
		if err == nil {
			*dst, err = d.bool()
		}
	}
	getf := func(dst *float64) {
		if err == nil {
			*dst, err = d.f()
		}
	}

	geti(&m.n)
	geti(&m.q)
	geti(&m.m)
	geti(&m.nOut)
	getfs(&m.v)
	getis(&m.gpi)
	getis(&m.gpj)
	getis(&m.cpi)
	getis(&m.cpj)
	var nin int
	geti(&nin)
	if err != nil {
		return nil, err
	}
	if nin > len(d.b)/16 {
		return nil, errCodec
	}
	m.inputs = make([]InputCol, nin)
	for i := range m.inputs {
		getis(&m.inputs[i].Rows)
		getfs(&m.inputs[i].Vals)
	}
	getis(&m.outputs)
	var grd, crd []float64
	getfs(&grd)
	getfs(&crd)
	getfs(&m.br)
	getfs(&m.brAgg)
	getfs(&m.lr)
	getb(&m.feOK)
	getfs(&m.feH)
	getfs(&m.feB)
	getfs(&m.feL)
	geti(&m.Info.Q)
	geti(&m.Info.N)
	getf(&m.Info.S0)
	geti(&m.Info.Shifts)
	geti(&m.Info.Anchors)
	getf(&m.Info.EstErrPct)
	getb(&m.Info.Validated)
	getb(&m.Info.Exhausted)
	if err != nil {
		return nil, err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("%w: trailing bytes", errCodec)
	}

	// Structural revalidation: nothing below may be trusted until the
	// dimensions and index ranges are proven mutually consistent.
	n, q := m.n, m.q
	switch {
	case n < 1 || n > codecMaxN,
		q < 1 || q > codecMaxQ || q > n,
		m.m < 1 || m.nOut < 1,
		len(m.v) != n*q,
		len(m.gpi) != len(m.gpj),
		len(m.cpi) != len(m.cpj),
		len(m.inputs) != m.m,
		len(m.outputs) != m.nOut,
		len(grd) != q*q || len(crd) != q*q,
		len(m.br) != q*m.m,
		len(m.brAgg) != q,
		len(m.lr) != m.nOut*q:
		return nil, fmt.Errorf("%w: inconsistent dimensions", errCodec)
	}
	inRange := func(idx []int) bool {
		for _, v := range idx {
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if !inRange(m.gpi) || !inRange(m.gpj) || !inRange(m.cpi) || !inRange(m.cpj) || !inRange(m.outputs) {
		return nil, fmt.Errorf("%w: index out of range", errCodec)
	}
	for _, in := range m.inputs {
		if len(in.Rows) != len(in.Vals) || !inRange(in.Rows) {
			return nil, fmt.Errorf("%w: malformed input column", errCodec)
		}
	}
	if m.feOK {
		if len(m.feH) != q*q || len(m.feB) != q || len(m.feL) != m.nOut*q {
			return nil, fmt.Errorf("%w: inconsistent fast-eval state", errCodec)
		}
	} else if len(m.feH) != 0 || len(m.feB) != 0 || len(m.feL) != 0 {
		return nil, fmt.Errorf("%w: unexpected fast-eval state", errCodec)
	}

	m.Gr = &numeric.Matrix{Rows: q, Cols: q, Data: grd}
	m.Cr = &numeric.Matrix{Rows: q, Cols: q, Data: crd}
	return m, nil
}
