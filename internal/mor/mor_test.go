package mor

import (
	"errors"
	"math"
	"math/cmplx"
	"testing"

	"rlckit/internal/numeric"
)

// rcLadder builds the triplets of an n-node RC ladder driven by a
// current injection at node 0: G tridiagonal from the series
// resistors plus a load conductance, C diagonal. The system is already
// passive-form (no branch rows), kl = ku = 1, identity permutation.
func rcLadder(n int, r, c float64) *System {
	g := numeric.NewTriplets(n)
	ct := numeric.NewTriplets(n)
	gg := 1 / r
	g.Add(0, 0, gg)
	for i := 1; i < n; i++ {
		g.Add(i-1, i-1, gg)
		g.Add(i, i, gg)
		g.Add(i-1, i, -gg)
		g.Add(i, i-1, -gg)
	}
	g.Add(n-1, n-1, gg/10) // load conductance pins the DC solution
	for i := 0; i < n; i++ {
		ct.Add(i, i, c)
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	return &System{
		N: n, KL: 1, KU: 1, Perm: perm,
		G: g, C: ct,
		Inputs:  []InputCol{{Rows: []int{0}, Vals: []float64{1}}},
		Outputs: []int{n - 1},
	}
}

// exactTF solves the full system densely at omega.
func exactTF(sys *System, vals AnchorValues, omega float64) complex128 {
	n := sys.N
	a := numeric.NewCMatrix(n, n)
	gv, cv := vals.G, vals.C
	if gv == nil {
		gv, cv = sys.G.V, sys.C.V
	}
	for k, i := range sys.G.I {
		a.Add(i, sys.G.J[k], complex(gv[k], 0))
	}
	for k, i := range sys.C.I {
		a.Add(i, sys.C.J[k], complex(0, omega*cv[k]))
	}
	b := make([]complex128, n)
	for _, in := range sys.Inputs {
		for k, r := range in.Rows {
			b[r] += complex(in.Vals[k], 0)
		}
	}
	x, err := numeric.SolveCDense(a, b)
	if err != nil {
		panic(err)
	}
	return x[sys.Outputs[0]]
}

func ladderOmegas(r, c float64, n int) []float64 {
	tau := r * c * float64(n) * float64(n)
	lo, hi := 0.01/tau, 30/tau
	out := make([]float64, 7)
	ratio := math.Pow(hi/lo, 1.0/6)
	w := lo
	for i := range out {
		out[i] = w
		w *= ratio
	}
	return out
}

func TestBuildReproducesExactTransferFunction(t *testing.T) {
	const n, r, c = 60, 100.0, 1e-13
	sys := rcLadder(n, r, c)
	omegas := ladderOmegas(r, c, n)
	mdl, err := Build(sys, Options{Omegas: omegas})
	if err != nil {
		t.Fatal(err)
	}
	info := mdl.Info
	if !info.Validated || info.Q >= n/2 || info.N != n {
		t.Fatalf("unexpected info %+v", info)
	}
	if mdl.Q() != info.Q || mdl.NumOutputs() != 1 || mdl.NumInputs() != 1 {
		t.Fatal("accessor mismatch")
	}
	if v, q := mdl.Basis(); len(v) != n*q {
		t.Fatalf("basis is %d floats for q=%d", len(v), q)
	}
	// Evaluate on a denser grid than the build probed, against dense
	// exact solves.
	eval := mdl.NewACEval()
	out := make([]complex128, 1)
	peak, worst := 0.0, 0.0
	for i := 0; i < 25; i++ {
		w := omegas[0] * math.Pow(omegas[len(omegas)-1]/omegas[0], float64(i)/24)
		if err := mdl.EvalAC(eval, w, out); err != nil {
			t.Fatal(err)
		}
		ye := exactTF(sys, AnchorValues{}, w)
		if m := cmplx.Abs(ye); m > peak {
			peak = m
		}
		if d := cmplx.Abs(out[0] - ye); d > worst {
			worst = d
		}
	}
	if worst/peak > 1e-2 {
		t.Errorf("reduced TF off by %.3g of peak on the dense grid", worst/peak)
	}
}

// TestTransientMatchesFullIntegration: the reduced trapezoidal
// recurrence must track a dense full-order trapezoidal integration of
// the same system driven by the same step.
func TestTransientMatchesFullIntegration(t *testing.T) {
	const n, r, c = 24, 200.0, 2e-13
	sys := rcLadder(n, r, c)
	omegas := ladderOmegas(r, c, n)
	mdl, err := Build(sys, Options{Omegas: omegas})
	if err != nil {
		t.Fatal(err)
	}
	tau := r * c * float64(n) * float64(n)
	h := tau / 400
	tr, err := mdl.NewTransient(h)
	if err != nil {
		t.Fatal(err)
	}

	// Dense full-order trapezoidal reference.
	gd := numeric.NewMatrix(n, n)
	cd := numeric.NewMatrix(n, n)
	for k, i := range sys.G.I {
		gd.Add(i, sys.G.J[k], sys.G.V[k])
	}
	for k, i := range sys.C.I {
		cd.Add(i, sys.C.J[k], sys.C.V[k])
	}
	af := numeric.NewMatrix(n, n)
	bf := numeric.NewMatrix(n, n)
	for i := range af.Data {
		af.Data[i] = cd.Data[i]/h + gd.Data[i]/2
		bf.Data[i] = cd.Data[i]/h - gd.Data[i]/2
	}
	lu, err := numeric.FactorLU(af)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	rhs := make([]float64, n)
	u := []float64{0}
	uPrev := 0.0
	worst := 0.0
	for s := 1; s <= 800; s++ {
		uNow := 1.0 // unit step from the first timestep on
		for i := 0; i < n; i++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				sum += bf.Data[i*n+j] * x[j]
			}
			rhs[i] = sum
		}
		rhs[0] += (uPrev + uNow) / 2
		x = lu.Solve(rhs)
		uPrev = uNow
		u[0] = uNow
		tr.Step(u)
		if d := math.Abs(tr.Output(0) - x[n-1]); d > worst {
			worst = d
		}
	}
	// The response settles to ~10·(1/gg)·... — compare against its final
	// magnitude.
	scale := math.Abs(x[n-1])
	if scale == 0 || worst/scale > 2e-2 {
		t.Errorf("reduced transient deviates by %.3g (final %.3g)", worst, scale)
	}
	// Start from a nonzero DC input and check the DC operating point.
	tr.Start([]float64{1})
	dc := exactTF(sys, AnchorValues{}, 0)
	if d := math.Abs(tr.Output(0) - real(dc)); d > 1e-6*math.Abs(real(dc)) {
		t.Errorf("Start DC point %.6g, want %.6g", tr.Output(0), real(dc))
	}
}

// TestReprojectAndPencils: value-only reprojection must track the
// exact perturbed system; per-class blocks must recombine to the same
// pencil; UsePencil validates its inputs.
func TestReprojectAndPencils(t *testing.T) {
	const n, r, c = 40, 150.0, 1e-13
	sys := rcLadder(n, r, c)
	omegas := ladderOmegas(r, c, n)
	mdl, err := Build(sys, Options{Omegas: omegas, ValTol: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	q := mdl.Q()

	// Per-class blocks: class 0 = G entries, class 0 for C too (single
	// class each here — linearity is what's being checked).
	gBlock := numeric.NewMatrix(q, q)
	cBlock := numeric.NewMatrix(q, q)
	if err := mdl.ProjectValues(sys.G.V, false, gBlock); err != nil {
		t.Fatal(err)
	}
	if err := mdl.ProjectValues(sys.C.V, true, cBlock); err != nil {
		t.Fatal(err)
	}

	// Perturb: scale all C ×1.3 (inside what this basis tolerates for an
	// RC chain), reproject, compare against dense exact.
	scaled := numeric.NewTriplets(n)
	scaled.I, scaled.J = sys.C.I, sys.C.J
	scaled.V = make([]float64, len(sys.C.V))
	for k, v := range sys.C.V {
		scaled.V[k] = 1.3 * v
	}
	if err := mdl.Reproject(sys.G, scaled); err != nil {
		t.Fatal(err)
	}
	eval := mdl.NewACEval()
	out := make([]complex128, 1)
	w := omegas[3]
	if err := mdl.EvalAC(eval, w, out); err != nil {
		t.Fatal(err)
	}
	ye := exactTF(sys, AnchorValues{G: sys.G.V, C: scaled.V}, w)
	if d := cmplx.Abs(out[0]-ye) / cmplx.Abs(ye); d > 2e-2 {
		t.Errorf("reprojected TF off by %.3g", d)
	}

	// The same pencil via class-block linearity.
	gr := append([]float64(nil), gBlock.Data...)
	cr := make([]float64, q*q)
	for i, v := range cBlock.Data {
		cr[i] = 1.3 * v
	}
	if err := mdl.UsePencil(gr, cr); err != nil {
		t.Fatal(err)
	}
	for i, v := range mdl.Cr.Data {
		if math.Abs(v-1.3*cBlock.Data[i]) > 1e-12*math.Abs(v) {
			t.Fatal("UsePencil did not install the combined matrices")
		}
	}
	out2 := make([]complex128, 1)
	if err := mdl.EvalAC(eval, w, out2); err != nil {
		t.Fatal(err)
	}
	// Summation order differs between the two paths; agreement is to
	// rounding, not bit-exact.
	if d := cmplx.Abs(out2[0] - out[0]); d > 1e-10*cmplx.Abs(out[0]) {
		t.Errorf("class-combined pencil evaluates differently: %v vs %v", out2[0], out[0])
	}

	// Error paths.
	if err := mdl.UsePencil(gr[:1], cr); err == nil {
		t.Error("short pencil accepted")
	}
	if err := mdl.ProjectValues(sys.G.V[:2], false, gBlock); err == nil {
		t.Error("short value array accepted")
	}
	bad := numeric.NewTriplets(n)
	bad.V = []float64{1}
	bad.I, bad.J = []int{0}, []int{0}
	if err := mdl.Reproject(bad, scaled); err == nil {
		t.Error("structure mismatch accepted")
	}
}

func TestBuildWithAnchors(t *testing.T) {
	const n, r, c = 40, 150.0, 1e-13
	sys := rcLadder(n, r, c)
	scale := func(f float64) AnchorValues {
		av := AnchorValues{G: make([]float64, len(sys.G.V)), C: make([]float64, len(sys.C.V))}
		for k, v := range sys.G.V {
			av.G[k] = v / f
		}
		for k, v := range sys.C.V {
			av.C[k] = f * v
		}
		return av
	}
	sys.Anchors = []AnchorValues{scale(1.5), scale(1 / 1.5)}
	omegas := ladderOmegas(r, c, n)
	mdl, err := Build(sys, Options{Omegas: omegas})
	if err != nil {
		t.Fatal(err)
	}
	if mdl.Info.Anchors != 2 || !mdl.Info.Validated {
		t.Fatalf("info %+v", mdl.Info)
	}
	// An in-between instance through the frozen basis.
	mid := scale(1.2)
	midT := numeric.NewTriplets(n)
	midT.I, midT.J, midT.V = sys.G.I, sys.G.J, mid.G
	midC := numeric.NewTriplets(n)
	midC.I, midC.J, midC.V = sys.C.I, sys.C.J, mid.C
	if err := mdl.Reproject(midT, midC); err != nil {
		t.Fatal(err)
	}
	eval := mdl.NewACEval()
	out := make([]complex128, 1)
	w := omegas[4]
	if err := mdl.EvalAC(eval, w, out); err != nil {
		t.Fatal(err)
	}
	ye := exactTF(sys, mid, w)
	if d := cmplx.Abs(out[0]-ye) / cmplx.Abs(ye); d > 2e-2 {
		t.Errorf("anchored in-between TF off by %.3g", d)
	}
	// Structure mismatch in an anchor is rejected.
	sys.Anchors = []AnchorValues{{G: []float64{1}, C: []float64{1}}}
	if _, err := Build(sys, Options{Omegas: omegas}); err == nil {
		t.Error("bad anchor accepted")
	}
}

func TestBuildOptionValidationAndFailures(t *testing.T) {
	sys := rcLadder(12, 100, 1e-13)
	omegas := ladderOmegas(100, 1e-13, 12)
	for _, opts := range []Options{
		{},                        // no omegas
		{Omegas: []float64{0, 1}}, // non-positive
		{Omegas: []float64{2, 1}}, // descending
		{Omegas: omegas, S0: -1},  // bad expansion point
		{Omegas: omegas, MaxOrder: -1},
	} {
		if _, err := Build(sys, opts); err == nil {
			t.Errorf("options %+v accepted", opts)
		}
	}
	if _, err := Build(&System{N: 0}, Options{Omegas: omegas}); err == nil {
		t.Error("empty system accepted")
	}
	if _, err := Build(&System{N: 5, G: sys.G, C: sys.C, Perm: sys.Perm}, Options{Omegas: omegas}); err == nil {
		t.Error("system without inputs accepted")
	}
	// An impossible tolerance at a tiny order cap must fail with
	// ErrNoConverge.
	if _, err := Build(sys, Options{Omegas: omegas, MaxOrder: 2, ValTol: 1e-12}); !errors.Is(err, ErrNoConverge) {
		t.Errorf("want ErrNoConverge, got %v", err)
	}
	// An explicit S0 restricts the build to one shift and still works.
	mdl, err := Build(sys, Options{Omegas: omegas, S0: omegas[3]})
	if err != nil {
		t.Fatal(err)
	}
	if mdl.Info.Shifts != 1 {
		t.Errorf("S0 override used %d shifts", mdl.Info.Shifts)
	}
	// Exhaustion: MaxOrder ≥ n lets the Krylov space run dry and the
	// model reproduce the reachable subspace exactly.
	mdl, err = Build(sys, Options{Omegas: omegas, MaxOrder: 12})
	if err != nil {
		t.Fatal(err)
	}
	if mdl.Info.Q > 12 {
		t.Errorf("q=%d exceeds the cap", mdl.Info.Q)
	}
}

func TestRelChangeEdge(t *testing.T) {
	if !math.IsInf(relChange([]complex128{1}, []complex128{0}), 1) {
		t.Error("zero-peak relChange should be +Inf")
	}
	if relChange([]complex128{1, 2}, []complex128{1, 2}) != 0 {
		t.Error("identical samples should have zero change")
	}
}
