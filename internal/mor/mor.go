// Package mor is rlckit's Krylov model-order reduction engine: it
// compresses a large MNA circuit description C·dx/dt + G·x = B·u(t)
// into a tiny congruence-projected model that preserves the
// input→output transfer behavior, so that AC sweeps, transient delay
// extraction and Monte Carlo populations evaluate a q×q dense system
// (q ≈ 8–48) instead of re-factoring the full n-unknown band system at
// every frequency point, timestep, or sample.
//
// The reduction is the PRIMA-style block Arnoldi iteration
// (Odabasioglu, Celik, Pileggi; in the moment-matching spirit of AWE,
// Pillage & Rohrer): with A = G + s₀·C factored once as a band LU, the
// orthonormal basis V spans the block Krylov space
//
//	span{A⁻¹B, (A⁻¹C)A⁻¹B, (A⁻¹C)²A⁻¹B, …}
//
// and the reduced matrices are the congruence projections G̃ = VᵀGV,
// C̃ = VᵀCV, B̃ = VᵀB. Each appended block matches one more moment of
// the transfer function about s₀, and the projection is computed from
// the same sparse triplets the full engine stamps from — building a
// model costs a few band factorizations plus q band solves, O(nnz·q),
// after which every evaluation touches only q×q dense kernels.
//
// The caller must hand Build the system in a passivity-friendly row
// scaling (C ⪰ 0 and G + Gᵀ ⪰ 0 up to sign conventions — internal/mna
// negates its branch-equation rows to get there): the congruence
// projection of that form is provably stable and passive, which is
// what makes the reduced transient trustworthy. Projecting the raw
// MNA convention (−L branch rows) produces unstable spurious modes.
//
// Three levers make one model serve many evaluations:
//
//   - Multiple expansion points: wide probed bands get two or three
//     log-spread real shifts, each with its own Arnoldi chain — far
//     fewer total columns than pushing one shift to high moment
//     counts across decades.
//   - Anchor systems: additional value-sets on the same sparsity
//     structure (e.g. slow/fast process-corner instances of a net)
//     contribute their own chains to the shared basis, so the frozen
//     basis spans the whole parameter family and the congruence
//     projection of any in-between instance stays accurate (the
//     Monte Carlo reuse path). Order selection tracks every variant's
//     projected transfer function, and validation certifies each
//     variant against exact full-order solves.
//   - Linearity of the projection: VᵀGV is linear in G, so per-class
//     blocks (ProjectValues) let a caller recombine the reduced pencil
//     for any scalar class-scaling of the matrices in O(q²), without
//     touching the full system again (UsePencil).
//
// Exact-fallback contract: a Build that cannot certify itself fails
// loudly rather than returning a silently wrong model. Unless
// SkipValidate is set, the converged candidate is checked against the
// full-order system — exact band solves at every probe frequency, for
// the nominal values and every anchor — and Build returns
// ErrNoConverge (wrapped) when the worst output error exceeds
// Options.ValTol of the response peak. Callers (mna.ACReduced,
// refeng, sweep, serve) treat any Build error as "use the exact
// engine for this net"; reduction is a fast path, never a
// correctness risk.
package mor

import (
	"context"
	"errors"
	"fmt"
	"math"

	"rlckit/internal/cancel"
	"rlckit/internal/faultinject"
	"rlckit/internal/numeric"
)

// ErrNoConverge reports that the reduced model could not be certified
// against the requested tolerances before MaxOrder; callers should
// fall back to the exact full-order engine.
var ErrNoConverge = errors.New("mor: reduction did not converge")

// InputCol is one column of the input incidence matrix B in the band
// (permuted) ordering: the system's right-hand side contribution of one
// source, scaled by u(t) for transient analysis and by a unit phasor
// for AC analysis.
type InputCol struct {
	Rows []int
	Vals []float64
}

// AnchorValues is one anchor system: alternative numeric values on
// exactly the sparsity structure of System.G and System.C (same
// coordinate sequences, different values) — typically a process-corner
// instance of the same circuit topology.
type AnchorValues struct {
	G, C []float64
}

// System is the full-order description handed to Build: the sparse MNA
// matrices in their original ordering, the band permutation and widths
// the module's band kernels use, the input/output maps (both in
// permuted coordinates), and optional anchor value-sets.
type System struct {
	N      int
	KL, KU int
	// Perm maps original indices to band indices (perm[orig] = new).
	Perm []int
	// G and C are the MNA conductance and storage triplets in original
	// ordering (passivity-friendly row scaling; see the package doc).
	G, C *numeric.Triplets
	// Inputs are the B columns; Outputs the observed rows.
	Inputs  []InputCol
	Outputs []int
	// Anchors are additional value-sets whose Krylov chains join the
	// basis, extending its reach across a parameter family.
	Anchors []AnchorValues
}

// Options tunes Build. The zero value of every field selects a default.
type Options struct {
	// Omegas are the angular frequencies (rad/s) at which order
	// selection probes the reduced transfer function and validation
	// compares it against the exact one. Required, ascending, positive.
	Omegas []float64
	// S0 is the real expansion point (rad/s); 0 means automatic: a
	// single point at the geometric mean of Omegas when the probed band
	// is narrow, two or three log-spread points when it is wide.
	S0 float64
	// MaxOrder caps the reduced order q (default 32, clamped to N).
	MaxOrder int
	// Tol is the relative convergence tolerance on the probed transfer
	// functions between consecutive orders (default 5e-4).
	Tol float64
	// ValTol is the validation tolerance: the worst reduced-vs-exact
	// output error, relative to the response peak over the validation
	// frequencies, must not exceed it (default 5e-3).
	ValTol float64
	// SkipValidate skips the exact-solve certification (used by tests
	// and by callers that validate end-to-end themselves).
	SkipValidate bool
	// Ctx, when non-nil, cancels the build: Build checks it once per
	// Arnoldi growth round (each round advances every chain one block
	// and possibly runs a validation — milliseconds of work) and
	// returns cancel.ErrCanceled/ErrDeadline once it is done.
	Ctx context.Context
}

func (o Options) withDefaults(n int) (Options, error) {
	if len(o.Omegas) == 0 {
		return o, errors.New("mor: Options.Omegas must list at least one probe frequency")
	}
	for i, w := range o.Omegas {
		if !(w > 0) || math.IsInf(w, 0) {
			return o, fmt.Errorf("mor: probe omega %g must be positive and finite", w)
		}
		if i > 0 && w < o.Omegas[i-1] {
			return o, errors.New("mor: Options.Omegas must be ascending")
		}
	}
	if o.S0 != 0 && (!(o.S0 > 0) || math.IsInf(o.S0, 0)) {
		return o, fmt.Errorf("mor: expansion point %g must be positive and finite", o.S0)
	}
	if o.MaxOrder == 0 {
		o.MaxOrder = 32
	}
	if o.MaxOrder < 1 {
		return o, fmt.Errorf("mor: MaxOrder %d must be positive", o.MaxOrder)
	}
	if o.MaxOrder > n {
		o.MaxOrder = n
	}
	if o.Tol == 0 {
		o.Tol = 5e-4
	}
	if o.ValTol == 0 {
		o.ValTol = 5e-3
	}
	return o, nil
}

// Info is the accuracy metadata of a built model, propagated through
// the facade and the serving layer so "reduced" answers carry their
// certification.
type Info struct {
	// Q is the reduced order; N the full order it replaced.
	Q, N int
	// S0 is the first expansion point (rad/s); Shifts how many were
	// used; Anchors how many anchor systems joined the basis.
	S0      float64
	Shifts  int
	Anchors int
	// EstErrPct is the validated worst-case transfer-function error in
	// percent of the response peak, over the nominal system and every
	// anchor (0 when validation was skipped).
	EstErrPct float64
	// Validated reports whether the exact-solve certification ran.
	Validated bool
	// Exhausted reports that the Krylov space was exhausted (the model
	// reproduces the reachable subspace exactly).
	Exhausted bool
}

// Model is a built reduced-order model. Evaluation methods that take
// scratch (ACEval, Transient) are safe for concurrent use with
// distinct scratch; Reproject, UsePencil and NewTransient mutate or
// read mutable state and must not race evaluations.
type Model struct {
	n, q, m int // full order, reduced order, inputs
	nOut    int

	// v is the orthonormal basis, column-major: column a is
	// v[a*n : (a+1)*n], indexed by permuted (band-ordering) row.
	v []float64
	// Permuted copies of the triplet structure, frozen at build time so
	// projections need no permutation lookups and can verify topology.
	gpi, gpj []int
	cpi, cpj []int
	// Frozen input columns and output rows (permuted coordinates).
	inputs  []InputCol
	outputs []int

	// Gr, Cr are the q×q congruence projections VᵀGV, VᵀCV of the
	// current target values (nominal after Build; whatever Reproject /
	// UsePencil installed afterwards). Br is the q×m input projection;
	// brAgg its row sums (the AC unit-phasor drive); lr the nOut×q
	// output map (rows of V at the output rows).
	Gr, Cr *numeric.Matrix
	br     []float64 // q×m, row-major
	brAgg  []float64
	lr     []float64

	// Fast AC evaluation state: the pencil (G̃ + jωC̃) transformed once
	// into (I + jω·H) with H = Qᵀ(G̃⁻¹C̃)Q upper Hessenberg, so a
	// frequency point costs one O(q²) Hessenberg solve instead of an
	// O(q³) dense factorization. feOK is false when G̃ was singular (or
	// after Reproject/UsePencil, which invalidate the transform);
	// EvalAC then solves the dense pencil per point.
	feOK bool
	feH  []float64 // q×q upper Hessenberg
	feB  []float64 // Qᵀ·G̃⁻¹·brAgg
	feL  []float64 // nOut×q: lr·Q

	proj projScratch

	Info Info
}

// projScratch holds the W = op·V workspace reused by projections.
type projScratch struct {
	w []float64 // n, one column at a time
}

// expansionShifts picks the real expansion points: the caller's S0 when
// set, otherwise one to three points log-spread across the probed band
// — matching a few moments at each of several points needs far fewer
// total columns than pushing one point to high moment counts across
// frequency decades.
func expansionShifts(o Options) []float64 {
	if o.S0 != 0 {
		return []float64{o.S0}
	}
	lo, hi := o.Omegas[0], o.Omegas[len(o.Omegas)-1]
	ratio := hi / lo
	logSpread := func(fracs ...float64) []float64 {
		out := make([]float64, len(fracs))
		for i, f := range fracs {
			out[i] = lo * math.Pow(ratio, f)
		}
		return out
	}
	switch {
	case ratio <= 30:
		return logSpread(0.5)
	case ratio <= 1000:
		return logSpread(1.0/3, 2.0/3)
	default:
		return logSpread(0.25, 0.5, 0.75)
	}
}

// variant is one value-set of the system (index 0 = nominal, then the
// anchors), with the builder's incremental projection state for it.
type variant struct {
	gv, cv []float64 // triplet values
	wg, wc []float64 // n×qmax column-major: G·V, C·V
	gr, cr []float64 // qmax-stride projections VᵀGV, VᵀCV
}

// chain is one (variant, shift) Arnoldi recurrence: its factored
// A = G + s·C and the basis columns of its newest block.
type chain struct {
	s    float64
	vi   int // variant index (which C feeds the recurrence)
	lu   *numeric.BandLU
	prev []int
}

// Build runs the block Arnoldi reduction on sys. On any failure —
// singular expansion matrices, non-convergence, failed validation — it
// returns a nil model and an error wrapping ErrNoConverge where the
// cause is accuracy, and callers fall back to the exact engine.
func Build(sys *System, opts Options) (*Model, error) {
	n := sys.N
	if n < 1 {
		return nil, errors.New("mor: empty system")
	}
	if len(sys.Inputs) == 0 || len(sys.Outputs) == 0 {
		return nil, errors.New("mor: system needs at least one input and one output")
	}
	opts, err := opts.withDefaults(n)
	if err != nil {
		return nil, err
	}
	m := len(sys.Inputs)
	if 2*m > opts.MaxOrder && m < n {
		return nil, fmt.Errorf("mor: %d inputs leave no room for moments under MaxOrder %d", m, opts.MaxOrder)
	}
	for i, a := range sys.Anchors {
		if len(a.G) != len(sys.G.V) || len(a.C) != len(sys.C.V) {
			return nil, fmt.Errorf("mor: anchor %d structure mismatch", i)
		}
	}

	qmax := opts.MaxOrder
	mdl := &Model{n: n, m: m, nOut: len(sys.Outputs)}
	mdl.freezeStructure(sys)
	shifts := expansionShifts(opts)
	mdl.Info = Info{N: n, S0: shifts[0], Shifts: len(shifts), Anchors: len(sys.Anchors)}

	b := &builder{mdl: mdl, qmax: qmax}
	b.variants = make([]*variant, 1+len(sys.Anchors))
	b.variants[0] = &variant{gv: sys.G.V, cv: sys.C.V}
	for i, a := range sys.Anchors {
		b.variants[1+i] = &variant{gv: a.G, cv: a.C}
	}
	b.init()

	// Factor A = G_v + s·C_v for every (variant, shift). A singular
	// shift gets nudged twice before the build gives up.
	var chains []*chain
	for vi, va := range b.variants {
		for _, s := range shifts {
			ch := &chain{s: s, vi: vi}
			for attempt := 0; ; attempt++ {
				a := numeric.NewBandMatrix(n, sys.KL, sys.KU)
				addScaled(a, sys.Perm, sys.G, va.gv, 1)
				addScaled(a, sys.Perm, sys.C, va.cv, ch.s)
				if ch.lu, err = numeric.FactorBandLU(a); err == nil {
					break
				}
				if faultinject.IsFault(err) {
					// An injected transient fault is not a singular shift:
					// nudging the shift would change the Krylov subspace and
					// hence the model bytes. Propagate so the caller retries
					// the identical build instead.
					return nil, err
				}
				if attempt == 2 {
					return nil, fmt.Errorf("mor: expansion matrix singular at s=%g (variant %d): %w", ch.s, vi, err)
				}
				ch.s *= 7.3 // any irrational-ish nudge off the unlucky point
			}
			chains = append(chains, ch)
		}
	}

	// Seed every chain with its orthonormalized A⁻¹B block (stopping at
	// the order cap — many chains × many inputs can exceed it).
	col := make([]float64, n)
	for _, ch := range chains {
		for _, in := range sys.Inputs {
			if mdl.q >= qmax {
				break
			}
			for i := range col {
				col[i] = 0
			}
			for k, r := range in.Rows {
				col[r] += in.Vals[k]
			}
			ch.lu.SolveInPlace(col)
			if b.add(col) {
				ch.prev = append(ch.prev, mdl.q-1)
			}
		}
	}
	if mdl.q == 0 {
		return nil, errors.New("mor: all input columns vanished (zero B)")
	}

	// Grow round-robin: each round advances every chain's newest block
	// through its (G + s·C)⁻¹C map, then probes the nominal projected
	// transfer function for convergence (a handful of spread
	// frequencies — the anchors and the full grid are certified exactly
	// by validation, so probing them every round would only burn q³
	// evaluations on what validation re-checks anyway).
	eval := mdl.NewACEval()
	probeOmegas := opts.Omegas
	if len(probeOmegas) > 4 {
		last := len(opts.Omegas) - 1
		probeOmegas = []float64{
			opts.Omegas[0], opts.Omegas[last/3], opts.Omegas[2*last/3], opts.Omegas[last],
		}
	}
	hLen := len(probeOmegas) * mdl.nOut
	hPrev := make([]complex128, 0, hLen)
	hCur := make([]complex128, hLen)
	row := make([]complex128, mdl.nOut)
	converged := 0
	lastValQ := -4 // re-validate only after meaningful growth
	for {
		if cerr := cancel.Check(opts.Ctx); cerr != nil {
			return nil, cerr
		}
		exhausted := false
		if mdl.q < qmax {
			grew := false
			for _, ch := range chains {
				cv := b.variants[ch.vi].cv
				var next []int
				for _, pc := range ch.prev {
					if mdl.q >= qmax {
						break
					}
					src := mdl.v[pc*n : (pc+1)*n]
					for i := range col {
						col[i] = 0
					}
					for k, pi := range mdl.cpi {
						col[pi] += cv[k] * src[mdl.cpj[k]]
					}
					ch.lu.SolveInPlace(col)
					if b.add(col) {
						next = append(next, mdl.q-1)
						grew = true
					}
				}
				ch.prev = next
			}
			exhausted = !grew
		}

		b.materialize()
		mdl.freezeMaps()
		probeOK := true
		for wi, w := range probeOmegas {
			if err := mdl.EvalAC(eval, w, row); err != nil {
				probeOK = false
				break
			}
			copy(hCur[wi*mdl.nOut:], row)
		}
		if probeOK && len(hPrev) == len(hCur) {
			if relChange(hCur, hPrev) < opts.Tol {
				converged++
			} else {
				converged = 0
			}
		}
		hPrev = append(hPrev[:0], hCur...)

		done := exhausted || mdl.q >= qmax
		// Try to certify when the probe settles or growth must stop —
		// and also periodically on the way up: with several chains a
		// round adds many columns, so the probe's converged-twice
		// criterion alone would overshoot the smallest certifiable
		// order, and every extra column costs q² per later evaluation.
		tryNow := (probeOK && converged >= 2) || done
		if !tryNow && !opts.SkipValidate && probeOK && mdl.q-lastValQ >= 8 {
			tryNow = true
		}
		if tryNow {
			mdl.Info.Q = mdl.q
			mdl.Info.Exhausted = exhausted
			if !probeOK && !exhausted {
				if done {
					return nil, fmt.Errorf("%w: reduced system singular at probe frequencies", ErrNoConverge)
				}
				continue
			}
			if opts.SkipValidate {
				return mdl, nil
			}
			if mdl.q-lastValQ < 4 && !done {
				continue // a failed validation this close would fail again
			}
			lastValQ = mdl.q
			errPct, verr := mdl.validate(sys, b, opts.Omegas)
			if verr != nil {
				return nil, verr
			}
			if errPct > 100*opts.ValTol {
				if done {
					return nil, fmt.Errorf("%w: validated error %.3g%% exceeds %.3g%% at order %d",
						ErrNoConverge, errPct, 100*opts.ValTol, mdl.q)
				}
				converged = 0 // keep growing toward MaxOrder
				continue
			}
			mdl.Info.EstErrPct = errPct
			mdl.Info.Validated = true
			return mdl, nil
		}
		if done {
			return nil, fmt.Errorf("%w: order %d hit MaxOrder without settling", ErrNoConverge, mdl.q)
		}
	}
}

// addScaled stamps s·vals over the structure of t into band storage —
// AddScaledToBand for a detached value array.
func addScaled(b *numeric.BandMatrix, perm []int, t *numeric.Triplets, vals []float64, s float64) {
	for k, i := range t.I {
		b.Add(perm[i], perm[t.J[k]], s*vals[k])
	}
}

// relChange is the maximum |a−b| over the peak |b|, the scale-free
// distance between two probed transfer-function sample sets.
func relChange(a, b []complex128) float64 {
	peak := 0.0
	for _, v := range b {
		if m := math.Hypot(real(v), imag(v)); m > peak {
			peak = m
		}
	}
	if peak == 0 {
		return math.Inf(1)
	}
	worst := 0.0
	for i := range a {
		d := a[i] - b[i]
		if m := math.Hypot(real(d), imag(d)); m > worst {
			worst = m
		}
	}
	return worst / peak
}

// builder owns the incremental congruence projections: alongside the
// growing basis V it maintains, per variant, W_G = G·V and W_C = C·V
// plus the projected products in qmax-stride buffers, so appending a
// column costs O(nnz + n·q) per variant instead of recomputing VᵀGV
// from scratch (which would make the build O(n·q³)).
type builder struct {
	mdl      *Model
	qmax     int
	variants []*variant
}

func (b *builder) init() {
	n, qm := b.mdl.n, b.qmax
	for _, va := range b.variants {
		va.wg = make([]float64, n*qm)
		va.wc = make([]float64, n*qm)
		va.gr = make([]float64, qm*qm)
		va.cr = make([]float64, qm*qm)
	}
}

// add orthonormalizes col into the basis (false when it deflates) and
// extends every variant's incremental projection with the new column.
func (b *builder) add(col []float64) bool {
	mdl := b.mdl
	if !mdl.appendOrth(col) {
		return false
	}
	n, qm := mdl.n, b.qmax
	a := mdl.q - 1
	va := mdl.v[a*n : (a+1)*n]
	for _, vr := range b.variants {
		wga := vr.wg[a*n : (a+1)*n]
		wca := vr.wc[a*n : (a+1)*n]
		for k, v := range vr.gv {
			wga[mdl.gpi[k]] += v * va[mdl.gpj[k]]
		}
		for k, v := range vr.cv {
			wca[mdl.cpi[k]] += v * va[mdl.cpj[k]]
		}
		for i := 0; i <= a; i++ {
			vi := mdl.v[i*n : (i+1)*n]
			var gia, cia, gai, cai float64
			wgi := vr.wg[i*n : (i+1)*n]
			wci := vr.wc[i*n : (i+1)*n]
			for r := 0; r < n; r++ {
				gia += vi[r] * wga[r]
				cia += vi[r] * wca[r]
				gai += va[r] * wgi[r]
				cai += va[r] * wci[r]
			}
			vr.gr[i*qm+a], vr.gr[a*qm+i] = gia, gai
			vr.cr[i*qm+a], vr.cr[a*qm+i] = cia, cai
		}
	}
	return true
}

// materialize copies the nominal variant's stride-qmax projection into
// the model's dense q×q matrices.
func (b *builder) materialize() {
	mdl, q := b.mdl, b.mdl.q
	if mdl.Gr == nil || mdl.Gr.Rows != q {
		mdl.Gr = numeric.NewMatrix(q, q)
		mdl.Cr = numeric.NewMatrix(q, q)
	}
	b.copyInto(b.variants[0], mdl.Gr, mdl.Cr)
}

// copyInto copies a variant's projection blocks into dense q×q form.
func (b *builder) copyInto(va *variant, gr, cr *numeric.Matrix) {
	q, qm := b.mdl.q, b.qmax
	for i := 0; i < q; i++ {
		copy(gr.Data[i*q:(i+1)*q], va.gr[i*qm:i*qm+q])
		copy(cr.Data[i*q:(i+1)*q], va.cr[i*qm:i*qm+q])
	}
}

// appendOrth orthonormalizes col against the basis (modified
// Gram-Schmidt with the Kahan–Parlett reorthogonalization trigger: a
// second pass only when the first one removed most of the vector) and
// appends it unless it deflates; col is clobbered. Reports whether a
// column was appended.
func (m *Model) appendOrth(col []float64) bool {
	n := m.n
	norm0 := vecNorm(col)
	if norm0 == 0 {
		return false
	}
	mgs := func() {
		for a := 0; a < m.q; a++ {
			va := m.v[a*n : (a+1)*n]
			h := 0.0
			for i, v := range va {
				h += v * col[i]
			}
			for i, v := range va {
				col[i] -= h * v
			}
		}
	}
	mgs()
	if vecNorm(col) < 0.5*norm0 {
		mgs()
	}
	norm := vecNorm(col)
	if norm <= 1e-10*norm0 {
		return false
	}
	inv := 1 / norm
	base := len(m.v)
	m.v = append(m.v, col...)
	for i := base; i < base+n; i++ {
		m.v[i] *= inv
	}
	m.q++
	return true
}

func vecNorm(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// freezeStructure snapshots the permuted triplet structure and the
// input/output maps.
func (m *Model) freezeStructure(sys *System) {
	m.gpi = make([]int, len(sys.G.I))
	m.gpj = make([]int, len(sys.G.I))
	for k, i := range sys.G.I {
		m.gpi[k], m.gpj[k] = sys.Perm[i], sys.Perm[sys.G.J[k]]
	}
	m.cpi = make([]int, len(sys.C.I))
	m.cpj = make([]int, len(sys.C.I))
	for k, i := range sys.C.I {
		m.cpi[k], m.cpj[k] = sys.Perm[i], sys.Perm[sys.C.J[k]]
	}
	m.inputs = append([]InputCol(nil), sys.Inputs...)
	m.outputs = append([]int(nil), sys.Outputs...)
}

// freezeMaps recomputes the V-dependent input/output projections
// (Br, the aggregate AC drive, the output rows of V) and the fast
// evaluation transform.
func (m *Model) freezeMaps() {
	n, q := m.n, m.q
	m.br = make([]float64, q*m.m)
	m.brAgg = make([]float64, q)
	for a := 0; a < q; a++ {
		va := m.v[a*n : (a+1)*n]
		for j, in := range m.inputs {
			s := 0.0
			for k, r := range in.Rows {
				s += in.Vals[k] * va[r]
			}
			m.br[a*m.m+j] = s
			m.brAgg[a] += s
		}
	}
	m.lr = make([]float64, m.nOut*q)
	for k, r := range m.outputs {
		for a := 0; a < q; a++ {
			m.lr[k*q+a] = m.v[a*n+r]
		}
	}
	m.prepFastEval()
}

// ProjectValues computes VᵀMV for an arbitrary value array laid out on
// the frozen G structure (onC false) or C structure (onC true) — the
// building block for per-class reduced pencils: the congruence
// projection is linear in the matrix values, so a scalar class-scaled
// instance recombines from per-class blocks in O(q²) (see UsePencil).
func (m *Model) ProjectValues(vals []float64, onC bool, dst *numeric.Matrix) error {
	pi, pj := m.gpi, m.gpj
	if onC {
		pi, pj = m.cpi, m.cpj
	}
	if len(vals) != len(pi) {
		return fmt.Errorf("mor: ProjectValues got %d values for a %d-entry structure", len(vals), len(pi))
	}
	n, q := m.n, m.q
	if dst.Rows != q || dst.Cols != q {
		return fmt.Errorf("mor: ProjectValues needs a %d×%d destination", q, q)
	}
	if len(m.proj.w) < n {
		m.proj.w = make([]float64, n)
	}
	w := m.proj.w[:n]
	for b := 0; b < q; b++ {
		vb := m.v[b*n : (b+1)*n]
		for i := range w {
			w[i] = 0
		}
		for k, v := range vals {
			w[pi[k]] += v * vb[pj[k]]
		}
		for a := 0; a < q; a++ {
			va := m.v[a*n : (a+1)*n]
			s := 0.0
			for i, vv := range va {
				s += vv * w[i]
			}
			dst.Data[a*q+b] = s
		}
	}
	return nil
}

// Reproject re-targets the model at same-structure triplet values
// through the frozen basis V — the generic Monte Carlo fast path:
// a perturbed instance of an already-reduced net costs O(nnz·q + n·q²)
// instead of a fresh Arnoldi build. The accuracy contract is the
// anchor mechanism: the basis must have been built with anchors
// bracketing the perturbation range, otherwise the congruence
// projection of far-off values degrades. The input/output maps depend
// only on V and stay frozen.
//
// Reproject mutates the model: it must not race concurrent
// evaluations.
func (m *Model) Reproject(g, c *numeric.Triplets) error {
	if len(g.V) != len(m.gpi) || len(c.V) != len(m.cpi) {
		return fmt.Errorf("mor: reprojection structure mismatch (G %d vs %d, C %d vs %d entries)",
			len(g.V), len(m.gpi), len(c.V), len(m.cpi))
	}
	if m.Gr == nil || m.Gr.Rows != m.q {
		m.Gr = numeric.NewMatrix(m.q, m.q)
		m.Cr = numeric.NewMatrix(m.q, m.q)
	}
	if err := m.ProjectValues(g.V, false, m.Gr); err != nil {
		return err
	}
	if err := m.ProjectValues(c.V, true, m.Cr); err != nil {
		return err
	}
	m.feOK = false
	return nil
}

// UsePencil installs externally combined reduced matrices — typically
// Σ wᵢ·blockᵢ over ProjectValues class blocks — as the model's current
// pencil. The slices must be q×q row-major; they are copied. Like
// Reproject, it must not race concurrent evaluations.
func (m *Model) UsePencil(gr, cr []float64) error {
	q := m.q
	if len(gr) != q*q || len(cr) != q*q {
		return fmt.Errorf("mor: UsePencil needs %d×%d matrices", q, q)
	}
	if m.Gr == nil || m.Gr.Rows != q {
		m.Gr = numeric.NewMatrix(q, q)
		m.Cr = numeric.NewMatrix(q, q)
	}
	copy(m.Gr.Data, gr)
	copy(m.Cr.Data, cr)
	m.feOK = false
	return nil
}

// Q returns the reduced order.
func (m *Model) Q() int { return m.q }

// NumOutputs returns the number of observed outputs.
func (m *Model) NumOutputs() int { return m.nOut }

// NumInputs returns the number of input columns (one per source).
func (m *Model) NumInputs() int { return m.m }

// Basis exposes the orthonormal basis (column-major, n per column) and
// its column count — observability for tests and diagnostics.
func (m *Model) Basis() ([]float64, int) { return m.v, m.q }

// prepFastEval builds the Hessenberg evaluation transform from the
// current G̃, C̃. On a singular G̃ it leaves feOK false and EvalAC
// solves the dense pencil per point instead.
func (m *Model) prepFastEval() {
	q := m.q
	m.feOK = false
	var glu numeric.LU
	if err := numeric.FactorLUInto(&glu, m.Gr); err != nil {
		return
	}
	h := make([]float64, q*q)
	col := make([]float64, q)
	for j := 0; j < q; j++ {
		for i := 0; i < q; i++ {
			col[i] = m.Cr.Data[i*q+j]
		}
		glu.SolveTo(col, col)
		for i := 0; i < q; i++ {
			h[i*q+j] = col[i]
		}
	}
	bp := make([]float64, q)
	glu.SolveTo(bp, m.brAgg)
	qm := make([]float64, q*q)
	for i := 0; i < q; i++ {
		qm[i*q+i] = 1
	}
	hessenberg(h, qm, q)
	m.feH = h
	m.feB = make([]float64, q)
	for i := 0; i < q; i++ {
		s := 0.0
		for r := 0; r < q; r++ {
			s += qm[r*q+i] * bp[r]
		}
		m.feB[i] = s
	}
	m.feL = make([]float64, m.nOut*q)
	for k := 0; k < m.nOut; k++ {
		lrow := m.lr[k*q : (k+1)*q]
		for j := 0; j < q; j++ {
			s := 0.0
			for r := 0; r < q; r++ {
				s += lrow[r] * qm[r*q+j]
			}
			m.feL[k*q+j] = s
		}
	}
	m.feOK = true
}

// hessenberg reduces a (n×n, row-major) to upper Hessenberg form by
// Householder similarity, accumulating the orthogonal transform into
// qm (a := Qᵀ·a·Q, qm := qm·Q).
func hessenberg(a, qm []float64, n int) {
	v := make([]float64, n)
	for k := 0; k < n-2; k++ {
		alpha := 0.0
		for i := k + 1; i < n; i++ {
			alpha += a[i*n+k] * a[i*n+k]
		}
		alpha = math.Sqrt(alpha)
		if alpha == 0 {
			continue
		}
		if a[(k+1)*n+k] > 0 {
			alpha = -alpha
		}
		vnorm2 := 0.0
		for i := k + 1; i < n; i++ {
			v[i] = a[i*n+k]
		}
		v[k+1] -= alpha
		for i := k + 1; i < n; i++ {
			vnorm2 += v[i] * v[i]
		}
		if vnorm2 == 0 {
			continue
		}
		beta := 2 / vnorm2
		// a := P·a with P = I − β·v·vᵀ (touches rows k+1…).
		for j := 0; j < n; j++ {
			s := 0.0
			for i := k + 1; i < n; i++ {
				s += v[i] * a[i*n+j]
			}
			s *= beta
			for i := k + 1; i < n; i++ {
				a[i*n+j] -= s * v[i]
			}
		}
		// a := a·P (touches columns k+1…).
		for i := 0; i < n; i++ {
			row := a[i*n : (i+1)*n]
			s := 0.0
			for j := k + 1; j < n; j++ {
				s += row[j] * v[j]
			}
			s *= beta
			for j := k + 1; j < n; j++ {
				row[j] -= s * v[j]
			}
		}
		// qm := qm·P.
		for i := 0; i < n; i++ {
			row := qm[i*n : (i+1)*n]
			s := 0.0
			for j := k + 1; j < n; j++ {
				s += row[j] * v[j]
			}
			s *= beta
			for j := k + 1; j < n; j++ {
				row[j] -= s * v[j]
			}
		}
		a[(k+1)*n+k] = alpha
		for i := k + 2; i < n; i++ {
			a[i*n+k] = 0
		}
	}
}

// validate compares the reduced and exact transfer functions at every
// probe frequency for the nominal system and every anchor, returning
// the worst output error in percent of the exact response peak.
func (m *Model) validate(sys *System, b *builder, omegas []float64) (float64, error) {
	bz := make([]complex128, sys.N)
	for _, in := range sys.Inputs {
		for k, r := range in.Rows {
			bz[r] += complex(in.Vals[k], 0)
		}
	}
	x := make([]complex128, sys.N)
	yr := make([]complex128, m.nOut)
	eval := m.NewACEval()
	a := numeric.NewCBandMatrix(sys.N, sys.KL, sys.KU)
	var lu numeric.CBandLU
	grq := numeric.NewMatrix(m.q, m.q)
	crq := numeric.NewMatrix(m.q, m.q)
	peak, worst := 0.0, 0.0
	for vi, va := range b.variants {
		var gr, cr *numeric.Matrix
		if vi == 0 {
			gr, cr = m.Gr, m.Cr
		} else {
			b.copyInto(va, grq, crq)
			gr, cr = grq, crq
		}
		for _, w := range omegas {
			a.Zero()
			for k, i := range sys.G.I {
				a.Add(sys.Perm[i], sys.Perm[sys.G.J[k]], complex(va.gv[k], 0))
			}
			for k, i := range sys.C.I {
				a.Add(sys.Perm[i], sys.Perm[sys.C.J[k]], complex(0, w*va.cv[k]))
			}
			if err := numeric.FactorCBandLUInto(&lu, a); err != nil {
				return 0, fmt.Errorf("mor: exact validation solve at ω=%g (variant %d): %w", w, vi, err)
			}
			lu.SolveTo(x, bz)
			if err := m.evalPencil(eval, gr, cr, w, yr); err != nil {
				return 0, fmt.Errorf("%w: reduced system singular at validation ω=%g (variant %d)", ErrNoConverge, w, vi)
			}
			for k, r := range m.outputs {
				ye := x[r]
				if mag := math.Hypot(real(ye), imag(ye)); mag > peak {
					peak = mag
				}
				d := yr[k] - ye
				if mag := math.Hypot(real(d), imag(d)); mag > worst {
					worst = mag
				}
			}
		}
	}
	if peak == 0 {
		return 0, fmt.Errorf("%w: exact response is identically zero at validation frequencies", ErrNoConverge)
	}
	return 100 * worst / peak, nil
}

// ACEval is per-worker scratch for EvalAC; create one per goroutine.
type ACEval struct {
	a  *numeric.CMatrix
	lu numeric.CLU
	z  []complex128
	hw []complex128 // Hessenberg working copy
}

// NewACEval returns evaluation scratch sized for the model.
func (m *Model) NewACEval() *ACEval {
	return &ACEval{
		a:  numeric.NewCMatrix(m.q, m.q),
		z:  make([]complex128, m.q),
		hw: make([]complex128, m.q*m.q),
	}
}

// EvalAC evaluates the reduced transfer function at angular frequency
// omega with unit phasors on every input (matching mna.AC's drive),
// writing one phasor per output into dst. With the Hessenberg
// transform available a point costs O(q²); otherwise one q×q dense
// factorization. After warmup it performs no heap allocations.
func (m *Model) EvalAC(sc *ACEval, omega float64, dst []complex128) error {
	q := m.q
	if sc.a.Rows != q {
		sc.a = numeric.NewCMatrix(q, q)
		sc.z = make([]complex128, q)
		sc.hw = make([]complex128, q*q)
	}
	if m.feOK {
		if err := m.evalHess(sc, omega); err != nil {
			return err
		}
		for k := range dst[:m.nOut] {
			var s complex128
			row := m.feL[k*q : (k+1)*q]
			for a, l := range row {
				s += complex(l, 0) * sc.z[a]
			}
			dst[k] = s
		}
		return nil
	}
	return m.evalPencil(sc, m.Gr, m.Cr, omega, dst)
}

// evalPencil solves the dense reduced pencil (gr + jω·cr) for the
// aggregate unit drive and writes the outputs — the general path used
// for reprojected pencils and build-time anchor probing.
func (m *Model) evalPencil(sc *ACEval, gr, cr *numeric.Matrix, omega float64, dst []complex128) error {
	q := m.q
	if sc.a.Rows != q {
		sc.a = numeric.NewCMatrix(q, q)
		sc.z = make([]complex128, q)
		sc.hw = make([]complex128, q*q)
	}
	gd, cd := gr.Data, cr.Data
	ad := sc.a.Data
	for i := range ad {
		ad[i] = complex(gd[i], omega*cd[i])
	}
	if err := numeric.FactorCLUInto(&sc.lu, sc.a); err != nil {
		return err
	}
	for i, v := range m.brAgg {
		sc.z[i] = complex(v, 0)
	}
	sc.lu.SolveTo(sc.z, sc.z)
	for k := range dst[:m.nOut] {
		var s complex128
		row := m.lr[k*q : (k+1)*q]
		for a, l := range row {
			s += complex(l, 0) * sc.z[a]
		}
		dst[k] = s
	}
	return nil
}

// evalHess solves (I + jω·H)·z = feB into sc.z by Gaussian elimination
// with adjacent-row partial pivoting — O(q²), the Hessenberg structure
// leaves exactly one subdiagonal to eliminate per column.
func (m *Model) evalHess(sc *ACEval, omega float64) error {
	q := m.q
	hw := sc.hw[:q*q]
	jw := complex(0, omega)
	for i := 0; i < q; i++ {
		lo := i - 1
		if lo < 0 {
			lo = 0
		}
		row := hw[i*q : (i+1)*q]
		for j := 0; j < lo; j++ {
			row[j] = 0
		}
		for j := lo; j < q; j++ {
			row[j] = jw * complex(m.feH[i*q+j], 0)
		}
		row[i] += 1
	}
	z := sc.z[:q]
	for i, v := range m.feB {
		z[i] = complex(v, 0)
	}
	for k := 0; k < q-1; k++ {
		if cabs1c(hw[(k+1)*q+k]) > cabs1c(hw[k*q+k]) {
			for j := k; j < q; j++ {
				hw[k*q+j], hw[(k+1)*q+j] = hw[(k+1)*q+j], hw[k*q+j]
			}
			z[k], z[k+1] = z[k+1], z[k]
		}
		piv := hw[k*q+k]
		if piv == 0 {
			return numeric.ErrSingular
		}
		if f := hw[(k+1)*q+k]; f != 0 {
			f /= piv
			for j := k + 1; j < q; j++ {
				hw[(k+1)*q+j] -= f * hw[k*q+j]
			}
			z[k+1] -= f * z[k]
		}
	}
	for i := q - 1; i >= 0; i-- {
		s := z[i]
		row := hw[i*q+i+1 : i*q+q]
		for j, v := range row {
			s -= v * z[i+1+j]
		}
		d := hw[i*q+i]
		if d == 0 {
			return numeric.ErrSingular
		}
		z[i] = s / d
	}
	return nil
}

// cabs1c is the |re|+|im| magnitude used for pivot comparison.
func cabs1c(v complex128) float64 { return math.Abs(real(v)) + math.Abs(imag(v)) }

// Transient integrates the reduced state equation C̃·ẋ + G̃·x = B̃·u(t)
// with the trapezoidal rule from rest, against the model's current
// pencil (nominal after Build, or whatever Reproject/UsePencil
// installed). The congruence projection of the passive form keeps the
// recurrence A-stable like the full engine's. Create with
// NewTransient, drive with Step, read with Output. One Transient is
// single-goroutine scratch; several may share one Model, but creation
// must not race Reproject/UsePencil.
type Transient struct {
	m   *Model
	lu  numeric.LU
	bm  []float64 // C̃/h − G̃/2, q×q
	x   []float64
	rhs []float64
	up  []float64 // previous input
}

// NewTransient factors the reduced step matrix for fixed step h. The
// state starts at rest (x = 0, u(0) = 0); call Start when u(0) ≠ 0.
func (m *Model) NewTransient(h float64) (*Transient, error) {
	if !(h > 0) || math.IsInf(h, 0) {
		return nil, fmt.Errorf("mor: transient step %g must be positive", h)
	}
	q := m.q
	tr := &Transient{
		m:   m,
		bm:  make([]float64, q*q),
		x:   make([]float64, q),
		rhs: make([]float64, q),
		up:  make([]float64, m.m),
	}
	a := numeric.NewMatrix(q, q)
	gd, cd := m.Gr.Data, m.Cr.Data
	for i := range a.Data {
		a.Data[i] = cd[i]/h + gd[i]/2
		tr.bm[i] = cd[i]/h - gd[i]/2
	}
	if err := numeric.FactorLUInto(&tr.lu, a); err != nil {
		return nil, fmt.Errorf("mor: reduced step matrix singular at h=%g: %w", h, err)
	}
	return tr, nil
}

// Start sets the initial condition to the DC operating point for the
// t = 0 input u0 — solving G̃·x = B̃·u0, mirroring the full engine's
// start — when G̃ is nonsingular, and to rest otherwise (also the full
// engine's fallback). Call before the first Step when u(0) is not
// identically zero.
func (tr *Transient) Start(u0 []float64) {
	m, q := tr.m, tr.m.q
	copy(tr.up, u0)
	for i := range tr.x {
		tr.x[i] = 0
	}
	zero := true
	for _, v := range u0 {
		if v != 0 {
			zero = false
			break
		}
	}
	if zero {
		return
	}
	var g numeric.LU
	if err := numeric.FactorLUInto(&g, m.Gr); err != nil {
		return
	}
	for i := 0; i < q; i++ {
		brow := m.br[i*m.m : (i+1)*m.m]
		s := 0.0
		for j, v := range brow {
			s += v * u0[j]
		}
		tr.rhs[i] = s
	}
	g.SolveTo(tr.x, tr.rhs)
}

// Step advances one timestep with the input vector u sampled at the new
// time t_{n+1} (one entry per input column). It allocates nothing.
func (tr *Transient) Step(u []float64) {
	m, q := tr.m, tr.m.q
	// rhs = (C̃/h − G̃/2)·x + B̃·(u_prev + u)/2
	for i := 0; i < q; i++ {
		row := tr.bm[i*q : (i+1)*q]
		s := 0.0
		for j, v := range row {
			s += v * tr.x[j]
		}
		brow := m.br[i*m.m : (i+1)*m.m]
		for j, v := range brow {
			s += v * (tr.up[j] + u[j]) / 2
		}
		tr.rhs[i] = s
	}
	tr.lu.SolveTo(tr.x, tr.rhs)
	copy(tr.up, u)
}

// Output returns output k of the current state.
func (tr *Transient) Output(k int) float64 {
	q := tr.m.q
	row := tr.m.lr[k*q : (k+1)*q]
	s := 0.0
	for a, l := range row {
		s += l * tr.x[a]
	}
	return s
}
