package rlckit_test

import (
	"math"
	"testing"

	"rlckit"
)

func TestPublicFacadeEndToEnd(t *testing.T) {
	line := rlckit.LineFromTotals(1000, 100e-9, 1e-12, 0.01)
	gate := rlckit.Drive{Rtr: 500, CL: 0.5e-12}

	p, err := rlckit.Analyze(line, gate)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Zeta-2.259) > 0.01 {
		t.Errorf("ζ = %g", p.Zeta)
	}
	model, err := rlckit.Delay(line, gate)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := rlckit.DelaySimulated(line, gate)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(model-sim) > 0.05*sim {
		t.Errorf("model %g vs sim %g", model, sim)
	}
	auto, usedEq9, err := rlckit.DelayAuto(line, gate)
	if err != nil || !usedEq9 || auto != model {
		t.Errorf("DelayAuto: %g, eq9=%v, err=%v", auto, usedEq9, err)
	}
	if rc := rlckit.DelayRCOnly(line, gate); rc <= 0 {
		t.Errorf("RC delay %g", rc)
	}
}

func TestPublicFacadeRepeatersAndScreening(t *testing.T) {
	node, err := rlckit.Technology("250nm")
	if err != nil {
		t.Fatal(err)
	}
	if len(rlckit.Technologies()) != 5 {
		t.Error("technology list")
	}
	line, err := node.GlobalWire.Line(0.02)
	if err != nil {
		t.Fatal(err)
	}
	rlc, err := rlckit.DesignRepeaters(line, node.Buffer())
	if err != nil {
		t.Fatal(err)
	}
	rc, err := rlckit.DesignRepeatersRC(line, node.Buffer())
	if err != nil {
		t.Fatal(err)
	}
	if rlc.K >= rc.K {
		t.Errorf("RLC plan should use fewer sections: %g vs %g", rlc.K, rc.K)
	}
	res, err := rlckit.NeedsInductance(line, node.Gate(20, 10), 50e-12)
	if err != nil {
		t.Fatal(err)
	}
	if res.LMin <= 0 || res.LMax <= res.LMin {
		t.Errorf("window [%g, %g]", res.LMin, res.LMax)
	}
}

func TestPublicFacadeSweep(t *testing.T) {
	node, err := rlckit.Technology("250nm")
	if err != nil {
		t.Fatal(err)
	}
	nets, err := rlckit.RandomNets(11, node, 50)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rlckit.SweepDelays(nets, rlckit.SweepConfig{
		RiseTime: 50e-12,
		Corners:  rlckit.DefaultCorners(),
		MC:       rlckit.SweepMonteCarlo{Samples: 2, Seed: 5, RSigma: 0.1, CSigma: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := 50 * 3 * 2; len(res.Samples) != want {
		t.Fatalf("%d samples, want %d", len(res.Samples), want)
	}
	if res.Screen.Total != len(res.Samples) {
		t.Errorf("screen total %d", res.Screen.Total)
	}
	if res.Delay.Median <= 0 {
		t.Errorf("median delay %g", res.Delay.Median)
	}
	// The RC model under-predicts on average across a random population.
	if res.RCErr.Mean >= 0 {
		t.Errorf("mean RC error %g%% not negative", res.RCErr.Mean)
	}
}

// TestTreeFacadeEndToEnd drives the multi-sink tree API exactly as a
// downstream user would: build, analyze with every engine, and sweep.
func TestTreeFacadeEndToEnd(t *testing.T) {
	tr, err := rlckit.NewTree(2e-15)
	if err != nil {
		t.Fatal(err)
	}
	stem, err := tr.Add(0, 25, 0.3e-9, 50e-15)
	if err != nil {
		t.Fatal(err)
	}
	var sinks []int
	for i := 0; i < 2; i++ {
		leaf, err := tr.Add(stem, 30+5*float64(i), 0.3e-9, 40e-15)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.MarkSink(leaf, 10e-15); err != nil {
			t.Fatal(err)
		}
		sinks = append(sinks, leaf)
	}
	d := rlckit.TreeDrive{Rtr: 60}
	var delays [3][]float64
	for ei, engine := range []rlckit.TreeEngine{rlckit.TreeEngineClosed, rlckit.TreeEngineMNA, rlckit.TreeEngineReduced} {
		res, err := rlckit.AnalyzeTree(tr, d, rlckit.TreeConfig{Engine: engine})
		if err != nil {
			t.Fatalf("%v: %v", engine, err)
		}
		if len(res.Sinks) != len(sinks) {
			t.Fatalf("%v: %d sinks", engine, len(res.Sinks))
		}
		if res.MaxSkew < 0 || res.MaxDelay <= 0 {
			t.Errorf("%v: bad skew stats %+v", engine, res)
		}
		for _, s := range res.Sinks {
			delays[ei] = append(delays[ei], s.Delay)
		}
	}
	// The three engines must agree to their stated accuracy on this
	// easy tree: closed within 10% of MNA, reduced within 1%.
	for k := range delays[1] {
		if rel := math.Abs(delays[0][k]-delays[1][k]) / delays[1][k]; rel > 0.10 {
			t.Errorf("closed vs MNA sink %d: %.2f%%", k, 100*rel)
		}
		if rel := math.Abs(delays[2][k]-delays[1][k]) / delays[1][k]; rel > 0.01 {
			t.Errorf("reduced vs MNA sink %d: %.2f%%", k, 100*rel)
		}
	}

	node, err := rlckit.Technology("250nm")
	if err != nil {
		t.Fatal(err)
	}
	trees, err := rlckit.RandomTrees(3, node, rlckit.TreeKindBalanced, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rlckit.SweepTreeDelays(trees, rlckit.SweepConfig{
		Corners: rlckit.DefaultCorners(),
		MC:      rlckit.SweepMonteCarlo{Samples: 2, Seed: 5, RSigma: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := 6 * 3 * 2; len(res.Samples) != want {
		t.Fatalf("sweep produced %d samples, want %d", len(res.Samples), want)
	}
	if res.MaxSkew.N == 0 || res.MaxDelay.Mean <= 0 {
		t.Errorf("bad sweep aggregates: %+v", res.MaxDelay)
	}
}
