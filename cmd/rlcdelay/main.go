// Command rlcdelay computes the propagation delay of a CMOS gate driving
// a distributed RLC line, comparing the paper's closed-form Eq. 9 model
// against RC-only estimates and (optionally) dynamic simulation.
//
// Usage:
//
//	rlcdelay -rt 1k -lt 100n -ct 1p -len 10m -rtr 500 -cl 0.5p [-sim] [-method reduced]
//
// All values accept engineering notation. -rt/-lt/-ct are line totals;
// -len is informational (defaults to 10 mm). -method reduced
// additionally measures the delay on a certified Krylov reduced-order
// model (internal/mor) and reports the model's order and validated
// accuracy; if the model cannot be certified the line says so and the
// exact engine answers instead.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rlckit/internal/core"
	"rlckit/internal/elmore"
	"rlckit/internal/refeng"
	"rlckit/internal/tline"
	"rlckit/internal/units"
)

func main() {
	var (
		rtF    = flag.String("rt", "1k", "total line resistance (ohms)")
		ltF    = flag.String("lt", "100n", "total line inductance (henries)")
		ctF    = flag.String("ct", "1p", "total line capacitance (farads)")
		lenF   = flag.String("len", "10m", "line length (meters)")
		rtrF   = flag.String("rtr", "500", "driver output resistance (ohms)")
		clF    = flag.String("cl", "0.5p", "load capacitance (farads)")
		sim    = flag.Bool("sim", false, "also run the exact-transfer-function simulation")
		method = flag.String("method", "", `extra estimator to run ("reduced" for the Krylov reduced-order engine)`)
	)
	flag.Parse()
	if err := run(*rtF, *ltF, *ctF, *lenF, *rtrF, *clF, *sim, *method, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rlcdelay:", err)
		os.Exit(1)
	}
}

func run(rtF, ltF, ctF, lenF, rtrF, clF string, sim bool, method string, out io.Writer) error {
	switch method {
	case "", "reduced":
	default:
		return fmt.Errorf("-method: unknown estimator %q (have \"reduced\")", method)
	}
	parse := func(name, s string) (float64, error) {
		v, err := units.Parse(s)
		if err != nil {
			return 0, fmt.Errorf("-%s: %w", name, err)
		}
		return v, nil
	}
	rt, err := parse("rt", rtF)
	if err != nil {
		return err
	}
	lt, err := parse("lt", ltF)
	if err != nil {
		return err
	}
	ct, err := parse("ct", ctF)
	if err != nil {
		return err
	}
	length, err := parse("len", lenF)
	if err != nil {
		return err
	}
	rtr, err := parse("rtr", rtrF)
	if err != nil {
		return err
	}
	cl, err := parse("cl", clF)
	if err != nil {
		return err
	}

	ln := tline.FromTotals(rt, lt, ct, length)
	d := tline.Drive{Rtr: rtr, CL: cl}
	p, err := core.Analyze(ln, d)
	if err != nil {
		return err
	}
	eq9, err := core.Delay(ln, d)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "Line:    Rt=%s  Lt=%s  Ct=%s  length=%s\n",
		units.Format(rt, "Ohm", 3), units.Format(lt, "H", 3),
		units.Format(ct, "F", 3), units.Format(length, "m", 3))
	fmt.Fprintf(out, "Gate:    Rtr=%s  CL=%s\n",
		units.Format(rtr, "Ohm", 3), units.Format(cl, "F", 3))
	fmt.Fprintf(out, "Params:  RT=%.3f  CT=%.3f  zeta=%.3f (%s)  TOF=%s\n",
		p.RT, p.CT, p.Zeta, p.Classify(), units.Format(ln.TimeOfFlight(), "s", 3))
	if !p.InAccuracyDomain() {
		fmt.Fprintf(out, "warning: RT/CT outside [0,1]; Eq. 9 error may exceed 5%%\n")
	}
	fmt.Fprintf(out, "Delay (Eq. 9, RLC):      %s\n", units.Format(eq9, "s", 4))
	fmt.Fprintf(out, "Delay (Sakurai, RC):     %s\n",
		units.Format(elmore.Sakurai50(rt, ct, rtr, cl), "s", 4))
	fmt.Fprintf(out, "Delay (0.69*Elmore, RC): %s\n",
		units.Format(0.693*elmore.LineElmore(rt, ct, rtr, cl), "s", 4))
	if sim {
		ref, err := refeng.DelayExactTF(ln, d, 0)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "Delay (simulated):       %s  (Eq. 9 error %+.2f%%)\n",
			units.Format(ref, "s", 4), 100*(eq9-ref)/ref)
	}
	if method == "reduced" {
		v, info, err := refeng.DelayReduced(ln, d, refeng.ReducedConfig{})
		if err != nil {
			// The exact-fallback contract: report the refusal, answer
			// with the exact engine.
			v, ferr := refeng.DelayExactTF(ln, d, 0)
			if ferr != nil {
				return ferr
			}
			fmt.Fprintf(out, "Delay (reduced-order):   %s  (model not certified; exact engine answered)\n",
				units.Format(v, "s", 4))
			return nil
		}
		fmt.Fprintf(out, "Delay (reduced-order):   %s  (order %d of %d, TF err %.3g%%)\n",
			units.Format(v, "s", 4), info.Q, info.N, info.EstErrPct)
	}
	return nil
}
