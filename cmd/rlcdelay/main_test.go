package main

import (
	"strings"
	"testing"
)

func TestRunBasic(t *testing.T) {
	var b strings.Builder
	if err := run("1k", "100n", "1p", "10m", "500", "0.5p", false, "", &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"zeta=2.259", "Eq. 9", "Sakurai", "1.295ns"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunWithSim(t *testing.T) {
	var b strings.Builder
	if err := run("1k", "100n", "1p", "10m", "500", "0.5p", true, "", &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "simulated") {
		t.Errorf("missing simulation line:\n%s", b.String())
	}
}

func TestRunWarnsOutsideDomain(t *testing.T) {
	var b strings.Builder
	if err := run("100", "10n", "1p", "2m", "500", "0.1p", false, "", &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "warning") {
		t.Errorf("missing out-of-domain warning:\n%s", b.String())
	}
}

func TestRunBadInput(t *testing.T) {
	var b strings.Builder
	if err := run("oops", "100n", "1p", "10m", "500", "0.5p", false, "", &b); err == nil {
		t.Error("bad -rt accepted")
	}
	if err := run("1k", "zzz", "1p", "10m", "500", "0.5p", false, "", &b); err == nil {
		t.Error("bad -lt accepted")
	}
	if err := run("1k", "100n", "1p", "10m", "500", "-0.5p", false, "", &b); err == nil {
		t.Error("negative -cl accepted")
	}
}

func TestReducedMethod(t *testing.T) {
	var b strings.Builder
	if err := run("1k", "100n", "1p", "10m", "500", "0.5p", true, "reduced", &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Delay (reduced-order):") {
		t.Errorf("missing reduced-order line:\n%s", out)
	}
	if !strings.Contains(out, "order ") {
		t.Errorf("missing model-order metadata:\n%s", out)
	}
	if err := run("1k", "100n", "1p", "10m", "500", "0.5p", false, "bogus", &b); err == nil {
		t.Error("bogus -method accepted")
	}
}
