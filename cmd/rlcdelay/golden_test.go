package main

import (
	"strings"
	"testing"

	"rlckit/internal/golden"
)

// TestGoldenOutputs locks the full report text of run() against
// checked-in files; refresh with `go test ./cmd/rlcdelay -update`.
func TestGoldenOutputs(t *testing.T) {
	cases := []struct {
		name                        string
		rt, lt, ct, length, rtr, cl string
		sim                         bool
		file                        string
	}{
		{"canonical line", "1k", "100n", "1p", "10m", "500", "0.5p", false, "canonical.txt"},
		{"canonical with sim", "1k", "100n", "1p", "10m", "500", "0.5p", true, "canonical_sim.txt"},
		{"out of domain", "100", "10n", "1p", "2m", "500", "0.1p", false, "out_of_domain.txt"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var b strings.Builder
			if err := run(tc.rt, tc.lt, tc.ct, tc.length, tc.rtr, tc.cl, tc.sim, "", &b); err != nil {
				t.Fatal(err)
			}
			golden.Assert(t, tc.file, []byte(b.String()))
		})
	}
}
