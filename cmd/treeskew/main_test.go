package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rlckit/internal/golden"
)

func defaultOpts() options {
	return options{
		node: "250nm", kind: "clock-h", sinks: 16, trees: 1,
		engine: "closed", seed: 1, corners: "tt,ff,ss", samples: 2,
		sigma: "0.1", drvSigma: "0.1",
	}
}

// TestGoldenSingleTree locks the per-sink table of one seeded tree per
// engine. Refresh with `go test ./cmd/treeskew -update`.
func TestGoldenSingleTree(t *testing.T) {
	cases := []struct {
		name, kind, engine string
		sinks              int
		file               string
	}{
		{"clock-h closed", "clock-h", "closed", 16, "clockh_closed.txt"},
		{"unbalanced closed", "unbalanced", "closed", 6, "unbalanced_closed.txt"},
		{"balanced mna", "balanced", "mna", 4, "balanced_mna.txt"},
		{"balanced reduced", "balanced", "reduced", 4, "balanced_reduced.txt"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := defaultOpts()
			o.kind, o.engine, o.sinks = tc.kind, tc.engine, tc.sinks
			var b strings.Builder
			if err := run(o, &b); err != nil {
				t.Fatal(err)
			}
			golden.Assert(t, tc.file, []byte(b.String()))
		})
	}
}

// TestGoldenSweep locks the population summary and CSV of a seeded
// tree sweep, and asserts the bytes are identical at every worker
// count.
func TestGoldenSweep(t *testing.T) {
	o := defaultOpts()
	o.trees = 20
	o.sinks = 4
	o.csvPath = filepath.Join(t.TempDir(), "out.csv")
	var b strings.Builder
	if err := run(o, &b); err != nil {
		t.Fatal(err)
	}
	out := strings.ReplaceAll(b.String(), o.csvPath, "OUT.csv")
	golden.Assert(t, "sweep20.txt", []byte(out))
	csv, err := os.ReadFile(o.csvPath)
	if err != nil {
		t.Fatal(err)
	}
	golden.Assert(t, "sweep20.samples.csv", csv)

	for _, workers := range []int{1, 4} {
		o2 := o
		o2.workers = workers
		o2.csvPath = ""
		var b2 strings.Builder
		if err := run(o2, &b2); err != nil {
			t.Fatal(err)
		}
		if got := b2.String(); got != strings.ReplaceAll(out, "\nwrote 120 samples to OUT.csv\n", "") {
			t.Errorf("workers=%d output differs from default", workers)
		}
	}
}

// TestSmartSweep exercises the smart estimator end to end (closed
// in-domain, exact fallback otherwise).
func TestSmartSweep(t *testing.T) {
	o := defaultOpts()
	o.trees = 5
	o.sinks = 4
	o.kind = "unbalanced"
	o.engine = "smart"
	o.samples = 1
	var b strings.Builder
	if err := run(o, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "in-domain sinks:") {
		t.Errorf("missing engine accounting line:\n%s", b.String())
	}
}

func TestUsageErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*options)
	}{
		{"bad node", func(o *options) { o.node = "90nm" }},
		{"bad kind", func(o *options) { o.kind = "star" }},
		{"bad engine", func(o *options) { o.engine = "warp" }},
		{"bad sweep engine", func(o *options) { o.engine = "warp"; o.trees = 2 }},
		{"one sink", func(o *options) { o.sinks = 1 }},
		{"zero trees", func(o *options) { o.trees = 0 }},
		{"bad corners", func(o *options) { o.trees = 2; o.corners = "fast" }},
		{"bad sigma", func(o *options) { o.trees = 2; o.sigma = "lots" }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := defaultOpts()
			tc.mutate(&o)
			var b strings.Builder
			err := run(o, &b)
			if err == nil {
				t.Fatal("expected an error")
			}
			var ue usageError
			if !errors.As(err, &ue) {
				t.Errorf("want usageError, got %T: %v", err, err)
			}
		})
	}
}
