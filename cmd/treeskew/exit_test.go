package main

import (
	"bytes"
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestMain lets the test binary stand in for the real treeskew binary:
// with TREESKEW_RUN_MAIN=1 it runs main() on its own os.Args, which is
// how the exit-status regression tests below observe real exit codes.
func TestMain(m *testing.M) {
	if os.Getenv("TREESKEW_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// treeskew re-executes the test binary as treeskew with args.
func treeskew(t *testing.T, args ...string) (exit int, stdout, stderr string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "TREESKEW_RUN_MAIN=1")
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running %v: %v", args, err)
		}
		return ee.ExitCode(), out.String(), errb.String()
	}
	return 0, out.String(), errb.String()
}

// TestExitCodes: invocation mistakes must exit 2 with a usage pointer,
// never print a partial table.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"unknown flag", []string{"-bogus"}, 2},
		{"unexpected argument", []string{"extra"}, 2},
		{"bad node", []string{"-node", "90nm"}, 2},
		{"bad kind", []string{"-kind", "star"}, 2},
		{"bad engine", []string{"-engine", "warp"}, 2},
		{"too few sinks", []string{"-sinks", "1"}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			exit, stdout, stderr := treeskew(t, tc.args...)
			if exit != tc.want {
				t.Errorf("exit %d, want %d (stderr: %s)", exit, tc.want, stderr)
			}
			if stdout != "" {
				t.Errorf("usage failure printed to stdout: %q", stdout)
			}
			if !strings.Contains(stderr, "usage") && !strings.Contains(stderr, "treeskew") {
				t.Errorf("stderr lacks a usage pointer: %q", stderr)
			}
		})
	}
}

// TestHappyPathExitZero runs a tiny single-tree analysis end to end.
func TestHappyPathExitZero(t *testing.T) {
	exit, stdout, stderr := treeskew(t, "-sinks", "4", "-kind", "balanced", "-seed", "2")
	if exit != 0 {
		t.Fatalf("exit %d, stderr: %s", exit, stderr)
	}
	if !strings.Contains(stdout, "max skew") {
		t.Errorf("missing skew line in output:\n%s", stdout)
	}
}
