// Command treeskew analyzes multi-sink RLC trees: per-sink 50% delays
// and sink-to-sink skew, with the inductance-aware engines of
// internal/rlctree graded against the RC-only answer a classic timing
// flow would give.
//
// With -trees 1 (the default) it prints the per-sink delay table of
// one seeded random tree. With -trees N it runs the chip-scale sweep:
// N trees × technology corners × Monte Carlo samples on the shared
// worker pool, printing population skew statistics (and optionally
// every sample as CSV).
//
// Usage:
//
//	treeskew -node 250nm -kind clock-h -sinks 16 -seed 1
//	treeskew -kind unbalanced -sinks 8 -engine mna
//	treeskew -trees 200 -samples 4 -corners tt,ff,ss -csv out.csv
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"rlckit/internal/netgen"
	"rlckit/internal/rlctree"
	"rlckit/internal/sweep"
	"rlckit/internal/tech"
	"rlckit/internal/units"
)

// usageError marks failures caused by how the command was invoked;
// main reports them with a usage pointer and exit status 2.
type usageError struct{ err error }

func (u usageError) Error() string { return u.err.Error() }
func (u usageError) Unwrap() error { return u.err }

func usagef(format string, args ...any) error {
	return usageError{fmt.Errorf(format, args...)}
}

func usage() {
	fmt.Fprint(flag.CommandLine.Output(), `usage: treeskew [flags]

Analyzes multi-sink RLC trees: per-sink 50% delays, sink-to-sink skew,
and the skew error of ignoring inductance. -trees 1 prints one tree's
per-sink table; -trees N runs a population sweep over corners and
Monte Carlo samples.

  treeskew -node 250nm -kind clock-h -sinks 16 -seed 1
  treeskew -kind unbalanced -sinks 8 -engine mna
  treeskew -trees 200 -samples 4 -corners tt,ff,ss -csv out.csv

Flags:
`)
	flag.PrintDefaults()
}

type options struct {
	node     string
	kind     string
	sinks    int
	trees    int
	engine   string
	seed     int64
	corners  string
	samples  int
	sigma    string
	drvSigma string
	workers  int
	csvPath  string
}

func main() {
	var o options
	flag.StringVar(&o.node, "node", "250nm", "technology node")
	flag.StringVar(&o.kind, "kind", "clock-h", "tree topology (balanced, unbalanced, clock-h)")
	flag.IntVar(&o.sinks, "sinks", 16, "sinks per tree (min 2)")
	flag.IntVar(&o.trees, "trees", 1, "tree population size (1 = single-tree table)")
	flag.StringVar(&o.engine, "engine", "closed", "delay engine (closed, mna, reduced, smart)")
	flag.Int64Var(&o.seed, "seed", 1, "generation and Monte Carlo seed")
	flag.StringVar(&o.corners, "corners", "tt,ff,ss", "comma-separated corner names (sweep mode)")
	flag.IntVar(&o.samples, "samples", 4, "Monte Carlo draws per tree and corner (sweep mode)")
	flag.StringVar(&o.sigma, "sigma", "0.1", "log-normal sigma on branch R, L, C (sweep mode)")
	flag.StringVar(&o.drvSigma, "drive-sigma", "0.1", "log-normal sigma on driver resistance (sweep mode)")
	flag.IntVar(&o.workers, "workers", 0, "worker pool size (0 = GOMAXPROCS)")
	flag.StringVar(&o.csvPath, "csv", "", "write per-sample CSV to this file (sweep mode)")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "treeskew: unexpected argument %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}
	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "treeskew:", err)
		if errors.As(err, &usageError{}) {
			fmt.Fprintln(os.Stderr, "run 'treeskew -h' for usage")
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func run(o options, out io.Writer) error {
	node, err := tech.Lookup(o.node)
	if err != nil {
		return usageError{err}
	}
	kind, err := netgen.ParseTreeKind(o.kind)
	if err != nil {
		return usageError{err}
	}
	if o.sinks < 2 {
		return usagef("-sinks must be at least 2, got %d", o.sinks)
	}
	if o.trees < 1 {
		return usagef("-trees must be positive, got %d", o.trees)
	}
	if o.trees == 1 {
		engine, err := parseEngine(o.engine)
		if err != nil {
			return usageError{err}
		}
		return runSingle(o, node, kind, engine, out)
	}
	return runSweep(o, node, kind, out)
}

// parseEngine resolves the single-tree engine name ("smart" is a sweep
// estimator, resolved in runSweep).
func parseEngine(s string) (rlctree.Engine, error) {
	switch s {
	case "closed":
		return rlctree.EngineClosed, nil
	case "mna":
		return rlctree.EngineMNA, nil
	case "reduced":
		return rlctree.EngineReduced, nil
	default:
		return 0, fmt.Errorf("unknown engine %q (have closed, mna, reduced)", s)
	}
}

func runSingle(o options, node tech.Node, kind netgen.TreeKind, engine rlctree.Engine, out io.Writer) error {
	batch, err := netgen.RandomTreeBatch(o.seed, node, kind, o.sinks, 1)
	if err != nil {
		return err
	}
	tn := batch[0]
	res, err := rlctree.Analyze(tn.Tree, tn.Drive, rlctree.Config{Engine: engine})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s: %d nodes, %d sinks, Ctot=%s, Rtr=%s\n",
		tn.Name, tn.Tree.Len(), len(tn.Tree.Sinks()),
		units.Format(tn.Tree.TotalCap(), "F", 3), units.Format(tn.Drive.Rtr, "Ohm", 3))
	engineLabel := res.Engine.String()
	if res.Fallback {
		engineLabel = "mna (reduced fell back)"
	} else if res.Reduced {
		engineLabel = fmt.Sprintf("reduced (q=%d of n=%d, err %.3g%%)",
			res.MORInfo.Q, res.MORInfo.N, res.MORInfo.EstErrPct)
	}
	fmt.Fprintf(out, "engine: %s\n\n", engineLabel)
	fmt.Fprintf(out, "%6s  %12s  %12s  %8s  %8s  %s\n", "sink", "delay", "delay RC", "err %", "zeta", "domain")
	for _, s := range res.Sinks {
		zeta := "-"
		if !isInfOrZero(s.Zeta) {
			zeta = fmt.Sprintf("%.3f", s.Zeta)
		}
		domain := "in"
		if !s.InDomain {
			domain = "out"
		}
		fmt.Fprintf(out, "%6d  %12s  %12s  %8.2f  %8s  %s\n",
			s.Node, units.Format(s.Delay, "s", 4), units.Format(s.DelayRC, "s", 4),
			100*(s.DelayRC-s.Delay)/s.Delay, zeta, domain)
	}
	fmt.Fprintf(out, "\ncritical delay %s   max skew %s   RC-only skew %s   skew err %+.1f%%\n",
		units.Format(res.MaxDelay, "s", 4), units.Format(res.MaxSkew, "s", 4),
		units.Format(res.MaxSkewRC, "s", 4), res.SkewErrPct)
	return nil
}

func isInfOrZero(v float64) bool {
	return v == 0 || v > 1e18
}

func runSweep(o options, node tech.Node, kind netgen.TreeKind, out io.Writer) error {
	est, err := parseEstimator(o.engine)
	if err != nil {
		return usageError{err}
	}
	sigma, err := units.Parse(o.sigma)
	if err != nil {
		return usagef("-sigma: %w", err)
	}
	drvSigma, err := units.Parse(o.drvSigma)
	if err != nil {
		return usagef("-drive-sigma: %w", err)
	}
	corners, err := parseCorners(o.corners)
	if err != nil {
		return usageError{err}
	}
	trees, err := netgen.RandomTreeBatch(o.seed, node, kind, o.sinks, o.trees)
	if err != nil {
		return err
	}
	res, err := sweep.RunTrees(trees, sweep.Config{
		Corners: corners,
		MC: sweep.MonteCarlo{
			Samples: o.samples, Seed: o.seed,
			RSigma: sigma, LSigma: sigma, CSigma: sigma, DriveSigma: drvSigma,
		},
		Workers:   o.workers,
		Estimator: est,
	})
	if err != nil {
		return err
	}
	if err := res.RenderSummary(out); err != nil {
		return err
	}
	if o.csvPath != "" {
		f, err := os.Create(o.csvPath)
		if err != nil {
			return err
		}
		bw := bufio.NewWriter(f)
		if err := res.WriteCSV(bw); err != nil {
			f.Close()
			return err
		}
		if err := bw.Flush(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nwrote %d samples to %s\n", len(res.Samples), o.csvPath)
	}
	return nil
}

func parseEstimator(s string) (sweep.Estimator, error) {
	switch s {
	case "closed":
		return sweep.EstimatorClosed, nil
	case "smart":
		return sweep.EstimatorSmart, nil
	case "mna", "simulated":
		return sweep.EstimatorSimulated, nil
	case "reduced":
		return sweep.EstimatorReduced, nil
	default:
		return 0, fmt.Errorf("unknown engine %q (have closed, smart, mna, reduced)", s)
	}
}

// parseCorners resolves a comma-separated corner-name list against the
// default corner set.
func parseCorners(list string) ([]sweep.Corner, error) {
	known := map[string]sweep.Corner{}
	for _, c := range sweep.DefaultCorners() {
		known[c.Name] = c
	}
	var out []sweep.Corner
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		c, ok := known[name]
		if !ok {
			return nil, fmt.Errorf("unknown corner %q (have tt, ff, ss)", name)
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no corners in %q", list)
	}
	return out, nil
}
