// Command rlckitd serves rlckit's interconnect analysis over HTTP: the
// paper as a design-time service. It answers delay, inductance
// screening, repeater sizing and Monte Carlo population questions as
// JSON POST endpoints, with a canonical-key response cache, micro-
// batched compute on a bounded worker pool, and 429 backpressure when
// the in-flight limit is reached.
//
//	rlckitd -addr :8080 -cache 8192 -max-inflight 512 -workers 8
//
// Endpoints:
//
//	POST /v1/delay      {"line":{"rt":..,"lt":..,"ct":..,"length":..},"drive":{"rtr":..,"cl":..}}
//	POST /v1/screen     ... + "rise_s"
//	POST /v1/repeaters  ... + "node" or "buffer", optional "model":"rc"
//	POST /v1/sweep      {"node":..,"nets":..,"seed":..,"rise_s":..,...}
//	POST /v1/tree       {"tree":{"root_c":..,"branches":[..],"sinks":[..]},"drive":{"rtr":..}}
//	POST /v1/session            open a what-if session over a tree (same body as /v1/tree)
//	POST /v1/session/{id}/edit  {"edits":[{"op":"branch",..},..]} -> re-analyzed result
//	DELETE /v1/session/{id}     close a session early
//	GET  /healthz       liveness + version
//	GET  /debug/vars    expvar metrics (rlckitd map: requests, cache, batching,
//	                    reduced-order mor_hits/mor_fallbacks)
//
// -pprof addr starts a net/http/pprof side listener (separate from the
// service port, so profiling endpoints are never exposed on the
// service address by accident).
//
// -store-dir enables crash-safe persistence: the response cache and
// certified reduced-order pencils are snapshotted there (checksummed,
// atomically replaced) every -snapshot-interval, and every what-if
// session open/edit/close is appended to a journal so open sessions
// survive a crash by replay. Recovery runs before the listener opens;
// corrupt or torn records are discarded (counted in expvar as
// store_discarded_corrupt), never served. -journal-sync trades edit
// latency for an fsync per applied batch.
//
// The server shuts down gracefully on SIGINT/SIGTERM: listeners close,
// in-flight requests get -grace to finish, then the process exits.
// Requests still computing when -grace expires are canceled at their
// next engine checkpoint and answered 503 "shutdown", so termination
// is bounded by grace plus a short drain rather than the longest
// running request. -request-timeout additionally caps each request's
// compute budget up front; requests that cannot finish in time are
// degraded to a cheaper estimator when possible (see internal/serve).
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // profiling handlers on the -pprof side listener
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"rlckit"
	"rlckit/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		cacheSize   = flag.Int("cache", serve.DefaultCacheEntries, "response cache entries (negative disables)")
		maxInflight = flag.Int("max-inflight", serve.DefaultMaxInFlight, "max concurrently admitted requests; excess get 429 (negative = unlimited)")
		workers     = flag.Int("workers", 0, "compute pool size (0 = GOMAXPROCS)")
		maxBatch    = flag.Int("max-batch", 64, "max coalesced single-net batch size")
		batchWindow = flag.Duration("batch-window", 0, "hold the first request of a batch up to this long to let it fill (0 = no added latency)")
		reqTimeout  = flag.Duration("request-timeout", 0, "per-request compute budget; over-budget requests get 503 or a degraded answer (0 = uncapped)")
		sessionTTL  = flag.Duration("session-ttl", serve.DefaultSessionTTL, "what-if session idle TTL before eviction (0 = never evict on idle)")
		maxSessions = flag.Int("max-sessions", serve.DefaultMaxSessions, "max live what-if sessions; opening past the cap evicts the least recently used")
		storeDir    = flag.String("store-dir", "", "persistence directory: warm-start snapshots + session journal (empty = in-memory only)")
		snapEvery   = flag.Duration("snapshot-interval", serve.DefaultSnapshotInterval, "background snapshot cadence when -store-dir is set (negative = only on shutdown)")
		journalSync = flag.Bool("journal-sync", false, "fsync the session journal after every applied edit batch (durability over latency)")
		grace       = flag.Duration("grace", 10*time.Second, "graceful shutdown timeout")
		pprofAddr   = flag.String("pprof", "", "net/http/pprof side-listener address (empty = disabled)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		usageErr("unexpected argument %q", flag.Arg(0))
	}
	// Nonsensical flag values are usage errors (exit 2), caught before
	// any listener opens — matching the netsweep/treeskew convention.
	if *sessionTTL < 0 {
		usageErr("-session-ttl must not be negative (use 0 to disable idle eviction)")
	}
	if *maxSessions <= 0 {
		usageErr("-max-sessions must be positive, got %d", *maxSessions)
	}
	if *storeDir != "" {
		if err := probeStoreDir(*storeDir); err != nil {
			usageErr("-store-dir: %v", err)
		}
	}
	ttl := *sessionTTL
	if ttl == 0 {
		ttl = -1 // serve.Config: negative disables idle eviction
	}
	if err := run(*addr, *pprofAddr, serve.Config{
		Workers:          *workers,
		CacheEntries:     *cacheSize,
		MaxInFlight:      *maxInflight,
		MaxBatch:         *maxBatch,
		BatchWindow:      *batchWindow,
		RequestTimeout:   *reqTimeout,
		SessionTTL:       ttl,
		MaxSessions:      *maxSessions,
		StoreDir:         *storeDir,
		SnapshotInterval: *snapEvery,
		JournalSync:      *journalSync,
	}, *grace, nil, nil); err != nil {
		fmt.Fprintln(os.Stderr, "rlckitd:", err)
		os.Exit(1)
	}
}

// usageErr reports a flag-validation failure and exits 2, the
// usage-error convention shared by the repo's CLIs.
func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rlckitd: "+format+"\n", args...)
	fmt.Fprintln(os.Stderr, "run 'rlckitd -h' for usage")
	os.Exit(2)
}

// probeStoreDir verifies the persistence directory can be created and
// written before the server boots, so a typo'd or read-only -store-dir
// is a usage error up front rather than a runtime failure mid-snapshot.
func probeStoreDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, ".probe-*")
	if err != nil {
		return fmt.Errorf("directory %s is not writable: %w", dir, err)
	}
	name := f.Name()
	f.Close()
	return os.Remove(name)
}

// current points expvar at the active server: registration must happen
// once (expvar panics on duplicate names) but run can be re-entered by
// tests, so the registered Func dereferences this pointer instead of
// capturing the first run's server.
var (
	current     atomic.Pointer[serve.Server]
	publishOnce sync.Once
)

// run builds the server, publishes metrics, and serves until a
// termination signal arrives. If ready (or pprofReady) is non-nil it
// receives the bound listener address once that listener is accepting
// connections (used by tests to serve on port 0).
func run(addr, pprofAddr string, cfg serve.Config, grace time.Duration, ready, pprofReady chan<- net.Addr) error {
	s, err := serve.New(cfg)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer s.Close()
	current.Store(s)

	if pprofAddr != "" {
		pln, err := net.Listen("tcp", pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		defer pln.Close()
		// http.DefaultServeMux carries the net/http/pprof handlers (and
		// expvar's /debug/vars).
		go func() {
			if err := http.Serve(pln, nil); err != nil && !errors.Is(err, net.ErrClosed) {
				log.Printf("rlckitd: pprof listener: %v", err)
			}
		}()
		log.Printf("rlckitd: pprof listening on %s", pln.Addr())
		if pprofReady != nil {
			pprofReady <- pln.Addr()
		}
	}

	publishOnce.Do(func() {
		expvar.Publish("rlckitd", expvar.Func(func() any { return current.Load().Stats() }))
		expvar.NewString("rlckitd.version").Set(rlckit.Version)
	})

	mux := http.NewServeMux()
	mux.Handle("/", s.Handler())
	mux.Handle("GET /debug/vars", expvar.Handler())

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	log.Printf("rlckitd %s listening on %s (workers=%d cache=%d max-inflight=%d)",
		rlckit.Version, ln.Addr(), cfg.Workers, cfg.CacheEntries, cfg.MaxInFlight)
	if ready != nil {
		ready <- ln.Addr()
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	select {
	case sig := <-sigCh:
		log.Printf("rlckitd: %v, shutting down", sig)
	case err := <-errCh:
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		// Grace expired with requests still computing. Cancel the
		// server's base context so every in-flight compute bails out at
		// its next engine checkpoint (answering 503 "shutdown"), then
		// give the connections a short second drain to flush those
		// responses instead of abandoning the process to a hang.
		log.Printf("rlckitd: grace %s expired (%v), canceling in-flight compute", grace, err)
		s.Close()
		ctx2, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel2()
		if err := srv.Shutdown(ctx2); err != nil {
			return fmt.Errorf("shutdown after cancel: %w", err)
		}
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Print("rlckitd: drained, bye")
	return nil
}
