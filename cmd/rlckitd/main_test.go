package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"

	"rlckit/internal/serve"
)

// startDaemon runs the daemon on an ephemeral port and returns its base
// URL plus a stop function that delivers SIGTERM and waits for the
// graceful exit.
func startDaemon(t *testing.T, cfg serve.Config) (string, func() error) {
	t.Helper()
	ready := make(chan net.Addr, 1)
	errCh := make(chan error, 1)
	go func() { errCh <- run("127.0.0.1:0", "", cfg, 5*time.Second, ready, nil) }()
	select {
	case addr := <-ready:
		stop := func() error {
			if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
				return err
			}
			select {
			case err := <-errCh:
				return err
			case <-time.After(10 * time.Second):
				return fmt.Errorf("daemon did not exit after SIGTERM")
			}
		}
		return "http://" + addr.String(), stop
	case err := <-errCh:
		t.Fatalf("daemon failed to start: %v", err)
		return "", nil
	}
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestDaemonEndToEnd boots the real daemon over TCP, exercises every
// endpoint plus expvar and health, and shuts it down with SIGTERM —
// the full production lifecycle in one test.
func TestDaemonEndToEnd(t *testing.T) {
	base, stop := startDaemon(t, serve.Config{Workers: 2, CacheEntries: 128})

	// Health.
	code, body := get(t, base+"/healthz")
	if code != 200 || !strings.Contains(body, `"ok"`) {
		t.Errorf("healthz: %d %q", code, body)
	}

	// A delay request, twice: second must be a cache hit.
	delayBody := `{"line":{"rt":1000,"lt":1e-7,"ct":1e-12,"length":0.01},"drive":{"rtr":500,"cl":5e-13}}`
	for i, wantCache := range []string{"miss", "hit"} {
		resp, err := http.Post(base+"/v1/delay", "application/json", strings.NewReader(delayBody))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("delay %d: status %d: %s", i, resp.StatusCode, b)
		}
		if got := resp.Header.Get("X-Cache"); got != wantCache {
			t.Errorf("delay %d: X-Cache = %q, want %q", i, got, wantCache)
		}
		var out struct {
			DelayS float64 `json:"delay_s"`
		}
		if err := json.Unmarshal(b, &out); err != nil || out.DelayS <= 0 {
			t.Errorf("delay %d: bad body %s (err %v)", i, b, err)
		}
	}

	// The other endpoints answer 200.
	for path, reqBody := range map[string]string{
		"/v1/screen":    `{"line":{"rt":100,"lt":1e-8,"ct":1e-12,"length":0.002},"drive":{"rtr":500,"cl":1e-13},"rise_s":5e-11}`,
		"/v1/repeaters": `{"line":{"rt":1000,"lt":1e-7,"ct":1e-12,"length":0.01},"node":"250nm"}`,
		"/v1/sweep":     `{"node":"250nm","nets":20,"seed":1,"rise_s":5e-11,"samples":2}`,
	} {
		resp, err := http.Post(base+path, "application/json", strings.NewReader(reqBody))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("%s: status %d: %s", path, resp.StatusCode, b)
		}
	}

	// Malformed request → 400 with a JSON error.
	resp, err := http.Post(base+"/v1/delay", "application/json", strings.NewReader(`{"nope`))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 400 || !strings.Contains(string(b), `"error"`) {
		t.Errorf("malformed: %d %s", resp.StatusCode, b)
	}

	// expvar exposes the rlckitd metrics map with our traffic counted.
	code, body = get(t, base+"/debug/vars")
	if code != 200 {
		t.Fatalf("debug/vars: %d", code)
	}
	var vars struct {
		Rlckitd serve.Stats `json:"rlckitd"`
	}
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("debug/vars not JSON: %v", err)
	}
	if vars.Rlckitd.Requests["delay"] < 2 || vars.Rlckitd.Cache.Hits < 1 {
		t.Errorf("metrics don't reflect traffic: %+v", vars.Rlckitd)
	}

	// Graceful shutdown on SIGTERM.
	if err := stop(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
}

// TestShutdownCancelsInFlight pins the bounded-termination contract:
// SIGTERM with a request still computing must not hang past grace plus
// the post-cancel drain. The in-flight compute is canceled at an
// engine checkpoint and answered 503, and run returns nil.
func TestShutdownCancelsInFlight(t *testing.T) {
	ready := make(chan net.Addr, 1)
	errCh := make(chan error, 1)
	go func() {
		errCh <- run("127.0.0.1:0", "", serve.Config{Workers: 2}, 200*time.Millisecond, ready, nil)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr.String()
	case err := <-errCh:
		t.Fatalf("daemon failed to start: %v", err)
	}

	// A simulated-estimator sweep takes seconds: it will still be
	// computing when the signal lands and grace expires.
	heavy := `{"node":"250nm","nets":10000,"seed":3,"rise_s":5e-11,"estimator":"simulated"}`
	type result struct {
		code int
		body string
		err  error
	}
	resCh := make(chan result, 1)
	go func() {
		resp, err := http.Post(base+"/v1/sweep", "application/json", strings.NewReader(heavy))
		if err != nil {
			resCh <- result{err: err}
			return
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		resCh <- result{resp.StatusCode, string(b), nil}
	}()
	time.Sleep(100 * time.Millisecond) // let the sweep reach the pool

	start := time.Now()
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("shutdown with in-flight compute returned error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon hung on SIGTERM with a request in flight")
	}
	if took := time.Since(start); took > 3*time.Second {
		t.Errorf("shutdown took %v, want ~grace (200ms) + short drain", took)
	}
	select {
	case r := <-resCh:
		// The canceled compute should flush a 503 before the listener
		// dies; a connection error is tolerated, a 200 is not (the
		// sweep cannot have finished honestly).
		if r.err == nil && r.code != 503 {
			t.Errorf("in-flight request answered %d (%s), want 503", r.code, r.body)
		}
	case <-time.After(time.Second):
		t.Error("in-flight request never completed after shutdown")
	}
}

// TestPprofSideListener boots the daemon with -pprof on an ephemeral
// port and checks the profiling and expvar endpoints answer there —
// and only there, not on the service address.
func TestPprofSideListener(t *testing.T) {
	ready := make(chan net.Addr, 1)
	pprofReady := make(chan net.Addr, 1)
	errCh := make(chan error, 1)
	go func() {
		errCh <- run("127.0.0.1:0", "127.0.0.1:0", serve.Config{Workers: 1}, 5*time.Second, ready, pprofReady)
	}()
	var base, pbase string
	for i := 0; i < 2; i++ {
		select {
		case addr := <-ready:
			base = "http://" + addr.String()
		case addr := <-pprofReady:
			pbase = "http://" + addr.String()
		case err := <-errCh:
			t.Fatalf("daemon failed to start: %v", err)
		case <-time.After(10 * time.Second):
			t.Fatal("daemon did not come up")
		}
	}

	if code, _ := get(t, pbase+"/debug/pprof/cmdline"); code != 200 {
		t.Errorf("pprof cmdline: status %d", code)
	}
	if code, body := get(t, pbase+"/debug/vars"); code != 200 || !strings.Contains(body, "rlckitd") {
		t.Errorf("pprof-side expvar: %d", code)
	}
	// The service listener must not expose the profiler.
	if code, _ := get(t, base+"/debug/pprof/cmdline"); code == 200 {
		t.Error("profiler reachable on the service address")
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
}
