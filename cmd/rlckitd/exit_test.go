package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestMain lets the test binary stand in for the real rlckitd binary:
// with RLCKITD_RUN_MAIN=1 it runs main() on its own os.Args, which is
// how the exit-status regression tests below observe real exit codes.
func TestMain(m *testing.M) {
	if os.Getenv("RLCKITD_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// rlckitd re-executes the test binary as rlckitd with args.
func rlckitd(t *testing.T, args ...string) (exit int, stdout, stderr string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "RLCKITD_RUN_MAIN=1")
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running %v: %v", args, err)
		}
		return ee.ExitCode(), out.String(), errb.String()
	}
	return 0, out.String(), errb.String()
}

// TestFlagValidationExitCodes pins the usage-error contract: nonsense
// flag values exit 2 with a message before any listener opens — a
// daemon that boots with -session-ttl -1m or an unwritable -store-dir
// would fail much later and much more confusingly.
func TestFlagValidationExitCodes(t *testing.T) {
	// A path whose parent is a file can never become a directory.
	blocked := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(blocked, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	roDir := filepath.Join(t.TempDir(), "ro")
	if err := os.Mkdir(roDir, 0o555); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name     string
		args     []string
		wantErr  string // must appear on stderr
		skipRoot bool   // permission checks are vacuous as uid 0
	}{
		{name: "unknown flag", args: []string{"-bogus"}, wantErr: "flag provided but not defined"},
		{name: "positional arg", args: []string{"extra"}, wantErr: "unexpected argument"},
		{name: "negative session ttl", args: []string{"-session-ttl", "-1m"}, wantErr: "-session-ttl must not be negative"},
		{name: "zero max sessions", args: []string{"-max-sessions", "0"}, wantErr: "-max-sessions must be positive"},
		{name: "negative max sessions", args: []string{"-max-sessions", "-3"}, wantErr: "run 'rlckitd -h' for usage"},
		{name: "store dir under a file", args: []string{"-store-dir", filepath.Join(blocked, "sub")}, wantErr: "-store-dir"},
		{name: "read-only store dir", args: []string{"-store-dir", filepath.Join(roDir, "sub")}, wantErr: "-store-dir", skipRoot: true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if c.skipRoot && os.Geteuid() == 0 {
				t.Skip("root ignores directory permissions")
			}
			exit, stdout, stderr := rlckitd(t, c.args...)
			if exit != 2 {
				t.Errorf("exit = %d, want 2 (stderr: %s)", exit, stderr)
			}
			if !strings.Contains(stderr, c.wantErr) {
				t.Errorf("stderr %q missing %q", stderr, c.wantErr)
			}
			if strings.Contains(stdout, "listening") || strings.Contains(stderr, "listening") {
				t.Errorf("failed invocation still opened a listener:\n%s%s", stdout, stderr)
			}
		})
	}
}

// TestUsageMentionsPersistenceFlags keeps -h self-documenting for the
// store flags, and doubles as the exit-0/2 path of the -h convention.
func TestUsageMentionsPersistenceFlags(t *testing.T) {
	exit, _, stderr := rlckitd(t, "-h")
	if exit != 0 && exit != 2 {
		t.Fatalf("-h exit = %d", exit)
	}
	for _, want := range []string{"-store-dir", "-snapshot-interval", "-journal-sync", "-session-ttl"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("usage missing %q:\n%s", want, stderr)
		}
	}
}
