package main

import (
	"strings"
	"testing"
)

func TestRunPlan(t *testing.T) {
	var b strings.Builder
	if err := run("1k", "5n", "1p", "10m", "1k", "1f", "1.8", false, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"T_{L/R} = 5.000", "RLC design", "RC design", "Eq. 18"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunPlanTrueOptimizer(t *testing.T) {
	var b strings.Builder
	if err := run("1k", "2n", "1p", "10m", "1k", "1f", "1.8", true, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Exact-engine optimum") {
		t.Errorf("missing optimizer section:\n%s", b.String())
	}
}

func TestRunPlanBadInput(t *testing.T) {
	var b strings.Builder
	if err := run("1k", "5n", "1p", "10m", "bad", "1f", "1.8", false, &b); err == nil {
		t.Error("bad -r0 accepted")
	}
}
