// Command repeaterplan designs optimal repeater insertion for an RLC
// line under both the paper's RLC closed forms and the classic RC-only
// Bakoglu solution, quantifying what ignoring inductance costs.
//
// Usage:
//
//	repeaterplan -rt 1k -lt 5n -ct 1p -len 10m -r0 1k -c0 1f [-true]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rlckit/internal/repeater"
	"rlckit/internal/tline"
	"rlckit/internal/units"
)

func main() {
	var (
		rtF  = flag.String("rt", "1k", "total line resistance (ohms)")
		ltF  = flag.String("lt", "5n", "total line inductance (henries)")
		ctF  = flag.String("ct", "1p", "total line capacitance (farads)")
		lenF = flag.String("len", "10m", "line length (meters)")
		r0F  = flag.String("r0", "1k", "min buffer output resistance (ohms)")
		c0F  = flag.String("c0", "1f", "min buffer input capacitance (farads)")
		vddF = flag.String("vdd", "1.8", "supply voltage (volts)")
		tru  = flag.Bool("true", false, "also run the exact-engine optimizer")
	)
	flag.Parse()
	if err := run(*rtF, *ltF, *ctF, *lenF, *r0F, *c0F, *vddF, *tru, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "repeaterplan:", err)
		os.Exit(1)
	}
}

func run(rtF, ltF, ctF, lenF, r0F, c0F, vddF string, tru bool, out io.Writer) error {
	vals := map[string]string{"rt": rtF, "lt": ltF, "ct": ctF, "len": lenF, "r0": r0F, "c0": c0F, "vdd": vddF}
	parsed := map[string]float64{}
	for name, s := range vals {
		v, err := units.Parse(s)
		if err != nil {
			return fmt.Errorf("-%s: %w", name, err)
		}
		parsed[name] = v
	}
	ln := tline.FromTotals(parsed["rt"], parsed["lt"], parsed["ct"], parsed["len"])
	buf := repeater.Buffer{R0: parsed["r0"], C0: parsed["c0"], Amin: 1, Vdd: parsed["vdd"]}

	tlr, err := repeater.TLR(ln, buf)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "T_{L/R} = %.3f\n\n", tlr)

	for _, m := range []repeater.Model{repeater.RLC, repeater.RC} {
		p, err := repeater.Design(ln, buf, m)
		if err != nil {
			return err
		}
		dTrue, err := repeater.TrueTotalDelay(ln, buf, p.H, p.K)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s design:\n", m)
		fmt.Fprintf(out, "  h = %.2f x min,  k = %.2f sections (use %d x h=%.2f)\n",
			p.H, p.K, p.KInt, p.HForKInt)
		fmt.Fprintf(out, "  delay: model %s, exact-engine %s\n",
			units.Format(p.TotalDelay, "s", 4), units.Format(dTrue, "s", 4))
		fmt.Fprintf(out, "  area %.1f x Amin, switching energy %s\n\n",
			p.AreaInt, units.Format(p.SwitchEnergy, "J", 3))
	}

	di, err := repeater.DelayIncrease(ln, buf)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Ignoring inductance (RC vs RLC design): %+.1f%% delay, %+.1f%% area (Eq. 18), Eq. 17 fit %.1f%%\n",
		di, repeater.AreaIncrease(tlr), repeater.DelayIncreaseApprox(tlr))
	ei, err := repeater.EnergyIncrease(ln, buf)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Switching-energy increase of the RC design: %+.1f%%\n", ei)

	if tru {
		h, k, d, err := repeater.OptimizeTrue(ln, buf)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\nExact-engine optimum: h = %.2f, k = %.2f, delay %s\n",
			h, k, units.Format(d, "s", 4))
		dvo, err := repeater.DelayIncreaseVsOptimum(ln, buf)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "RC design vs exact optimum: %+.1f%%\n", dvo)
	}
	return nil
}
