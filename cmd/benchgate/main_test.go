package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const baseOut = `goos: linux
goarch: amd64
pkg: rlckit
cpu: Intel(R) Xeon(R)
BenchmarkMNADelay-8        	     100	  14000000 ns/op	 1000 B/op	 10 allocs/op
BenchmarkMNADelay-8        	     100	  13900000 ns/op	 1000 B/op	 10 allocs/op
BenchmarkMNADelay-8        	     100	  14100000 ns/op	 1000 B/op	 10 allocs/op
BenchmarkSweep10k-8        	      30	  32000000 ns/op
BenchmarkSweep10k-8        	      30	  33000000 ns/op
BenchmarkSweep10k-8        	      30	  31000000 ns/op
BenchmarkAblation/seg=10-8 	     500	    200000 ns/op
PASS
`

func write(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParse(t *testing.T) {
	m, err := parse(strings.NewReader(baseOut))
	if err != nil {
		t.Fatal(err)
	}
	if len(m["BenchmarkMNADelay-8"]) != 3 {
		t.Errorf("MNADelay samples = %v", m["BenchmarkMNADelay-8"])
	}
	if got := median(m["BenchmarkMNADelay-8"]); got != 14000000 {
		t.Errorf("median = %g, want 14000000", got)
	}
	if len(m["BenchmarkAblation/seg=10-8"]) != 1 {
		t.Error("sub-benchmark not parsed")
	}
}

func TestMedianEven(t *testing.T) {
	if got := median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("median = %g, want 2.5", got)
	}
	if got := median(nil); got != 0 {
		t.Errorf("median(nil) = %g", got)
	}
}

func TestIsGated(t *testing.T) {
	gated := []string{"BenchmarkServeDelayHot", "BenchmarkSweep10k"}
	for n, want := range map[string]bool{
		"BenchmarkServeDelayHot-8":      true,
		"BenchmarkServeDelayHot/x-8":    true,
		"BenchmarkServeDelayHotter-8":   false,
		"BenchmarkSweep10k-16":          true,
		"BenchmarkSweep10kWithExtras-8": false,
	} {
		if got := isGated(n, gated); got != want {
			t.Errorf("isGated(%q) = %v, want %v", n, got, want)
		}
	}
}

func TestGatePasses(t *testing.T) {
	// Head is 5% slower on MNADelay (under threshold) and 20% faster on
	// Sweep10k: gate must pass.
	head := strings.ReplaceAll(baseOut, "  14000000 ns/op", "  14700000 ns/op")
	head = strings.ReplaceAll(head, "  32000000 ns/op", "  25600000 ns/op")
	head = strings.ReplaceAll(head, "  33000000 ns/op", "  25700000 ns/op")
	head = strings.ReplaceAll(head, "  31000000 ns/op", "  25500000 ns/op")
	var out strings.Builder
	err := run(write(t, "base.txt", baseOut), write(t, "head.txt", head),
		"BenchmarkMNADelay,BenchmarkSweep10k", 10, "", "", &out)
	if err != nil {
		t.Fatalf("gate failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "gate passed") {
		t.Errorf("missing pass line:\n%s", out.String())
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	// All three Sweep10k samples 15% slower: median regression 15% > 10%.
	head := strings.ReplaceAll(baseOut, "  32000000 ns/op", "  36800000 ns/op")
	head = strings.ReplaceAll(head, "  33000000 ns/op", "  37950000 ns/op")
	head = strings.ReplaceAll(head, "  31000000 ns/op", "  35650000 ns/op")
	var out strings.Builder
	err := run(write(t, "base.txt", baseOut), write(t, "head.txt", head),
		"BenchmarkMNADelay,BenchmarkSweep10k", 10, "", "", &out)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkSweep10k") {
		t.Fatalf("err = %v, want Sweep10k regression", err)
	}
}

func TestUngatedRegressionPasses(t *testing.T) {
	// A 50% regression on a bench that is not gated must not fail.
	head := strings.ReplaceAll(baseOut, "    200000 ns/op", "    300000 ns/op")
	var out strings.Builder
	err := run(write(t, "base.txt", baseOut), write(t, "head.txt", head),
		"BenchmarkMNADelay", 10, "", "", &out)
	if err != nil {
		t.Fatalf("ungated regression failed the gate: %v", err)
	}
}

func TestNewBenchmarkPasses(t *testing.T) {
	head := baseOut + "BenchmarkServeDelayHot-8   	   10000	     13000 ns/op\n"
	var out strings.Builder
	err := run(write(t, "base.txt", baseOut), write(t, "head.txt", head),
		"BenchmarkMNADelay,BenchmarkServeDelayHot", 10, "", "", &out)
	if err != nil {
		t.Fatalf("new gated benchmark failed the gate: %v", err)
	}
	if !strings.Contains(out.String(), "(new)") {
		t.Errorf("new benchmark not marked:\n%s", out.String())
	}
}

func TestMissingGatedBenchFails(t *testing.T) {
	var out strings.Builder
	err := run(write(t, "base.txt", baseOut), write(t, "head.txt", baseOut),
		"BenchmarkDoesNotExist", 10, "", "", &out)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkDoesNotExist") {
		t.Fatalf("err = %v, want missing-bench failure", err)
	}
}

func TestEmptyHeadFails(t *testing.T) {
	var out strings.Builder
	err := run(write(t, "base.txt", baseOut), write(t, "head.txt", "PASS\n"),
		"", 10, "", "", &out)
	if err == nil || !strings.Contains(err.Error(), "no benchmark results") {
		t.Fatalf("err = %v, want empty-head failure", err)
	}
}

func TestJSONArtifact(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "BENCH_abc123.json")
	var out strings.Builder
	err := run(write(t, "base.txt", baseOut), write(t, "head.txt", baseOut),
		"BenchmarkMNADelay", 10, jsonPath, "abc123", &out)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatalf("artifact not JSON: %v", err)
	}
	if rep.SHA != "abc123" || rep.ThresholdPct != 10 {
		t.Errorf("report header = %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Errorf("benchmarks in artifact = %d, want 3", len(rep.Benchmarks))
	}
	var gated int
	for _, b := range rep.Benchmarks {
		if b.Gated {
			gated++
			if b.DeltaPct != 0 || b.Regression {
				t.Errorf("identical runs produced delta: %+v", b)
			}
		}
	}
	if gated != 1 {
		t.Errorf("gated benchmarks = %d, want 1", gated)
	}
}
