// Command benchgate is the CI benchmark-regression gate: it parses two
// `go test -bench` outputs (base and head, each typically -count 6),
// compares per-benchmark median ns/op, and fails when any gated
// benchmark regressed by more than the threshold.
//
//	go test -bench . -benchmem -count 6 ./... > head.txt   # on the PR
//	git checkout $BASE && go test -bench ... > base.txt    # on the base
//	benchgate -base base.txt -head head.txt \
//	    -gate BenchmarkMNADelay,BenchmarkSweep10k,BenchmarkServeDelayHot \
//	    -threshold 10 -json BENCH_$SHA.json
//
// Medians (not means) absorb the odd noisy run; benchstat's full
// statistical report is printed alongside by the CI job for humans,
// while benchgate provides the machine-checkable verdict and the JSON
// artifact uploaded for later comparisons.
//
// Gated names match whole benchmarks: "BenchmarkServeDelayHot" matches
// "BenchmarkServeDelayHot-8" and "BenchmarkServeDelayHot/sub-8" but not
// "BenchmarkServeDelayHotter". A gated benchmark missing from the head
// run fails the gate (a deleted benchmark must be de-listed
// deliberately); one missing from the base run passes as "new".
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's verdict in the JSON artifact.
type Result struct {
	Name       string  `json:"name"`
	BaseNsOp   float64 `json:"base_ns_op,omitempty"`
	HeadNsOp   float64 `json:"head_ns_op"`
	DeltaPct   float64 `json:"delta_pct"`
	Gated      bool    `json:"gated"`
	Regression bool    `json:"regression"`
	New        bool    `json:"new,omitempty"`
}

// Report is the BENCH_<sha>.json artifact schema.
type Report struct {
	SHA          string   `json:"sha,omitempty"`
	ThresholdPct float64  `json:"threshold_pct"`
	Benchmarks   []Result `json:"benchmarks"`
}

func main() {
	var (
		basePath  = flag.String("base", "", "base branch `go test -bench` output")
		headPath  = flag.String("head", "", "PR head `go test -bench` output")
		gate      = flag.String("gate", "", "comma-separated benchmark names to gate")
		threshold = flag.Float64("threshold", 10, "max allowed median regression in percent")
		jsonPath  = flag.String("json", "", "write the full comparison as JSON to this file")
		sha       = flag.String("sha", "", "head commit SHA recorded in the JSON artifact")
	)
	flag.Parse()
	if *basePath == "" || *headPath == "" || flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: benchgate -base base.txt -head head.txt [-gate Bench1,Bench2] [-threshold 10] [-json out.json]")
		os.Exit(2)
	}
	if err := run(*basePath, *headPath, *gate, *threshold, *jsonPath, *sha, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(basePath, headPath, gate string, threshold float64, jsonPath, sha string, out io.Writer) error {
	base, err := parseFile(basePath)
	if err != nil {
		return fmt.Errorf("%s: %w", basePath, err)
	}
	head, err := parseFile(headPath)
	if err != nil {
		return fmt.Errorf("%s: %w", headPath, err)
	}
	if len(head) == 0 {
		return fmt.Errorf("%s contains no benchmark results", headPath)
	}
	var gated []string
	for _, g := range strings.Split(gate, ",") {
		if g = strings.TrimSpace(g); g != "" {
			gated = append(gated, g)
		}
	}
	rep := Report{SHA: sha, ThresholdPct: threshold}
	var regressions, missing []string

	names := make([]string, 0, len(head))
	for n := range head {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		r := Result{Name: n, HeadNsOp: median(head[n]), Gated: isGated(n, gated)}
		if b, ok := base[n]; ok {
			r.BaseNsOp = median(b)
			r.DeltaPct = 100 * (r.HeadNsOp - r.BaseNsOp) / r.BaseNsOp
			r.Regression = r.Gated && r.DeltaPct > threshold
		} else {
			r.New = true
		}
		if r.Regression {
			regressions = append(regressions, fmt.Sprintf("%s: %.0f → %.0f ns/op (%+.1f%%)",
				n, r.BaseNsOp, r.HeadNsOp, r.DeltaPct))
		}
		rep.Benchmarks = append(rep.Benchmarks, r)
	}
	// Every gated name must appear in the head run.
	for _, g := range gated {
		found := false
		for n := range head {
			if isGated(n, []string{g}) {
				found = true
				break
			}
		}
		if !found {
			missing = append(missing, g)
		}
	}

	for _, r := range rep.Benchmarks {
		mark := " "
		switch {
		case r.Regression:
			mark = "✗"
		case r.New:
			mark = "+"
		case r.Gated:
			mark = "✓"
		}
		if r.New {
			fmt.Fprintf(out, "%s %-50s %12.1f ns/op  (new)\n", mark, r.Name, r.HeadNsOp)
		} else {
			fmt.Fprintf(out, "%s %-50s %12.1f ns/op  %+6.1f%%\n", mark, r.Name, r.HeadNsOp, r.DeltaPct)
		}
	}

	if jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", jsonPath)
	}
	if len(missing) > 0 {
		return fmt.Errorf("gated benchmarks missing from head run: %s", strings.Join(missing, ", "))
	}
	if len(regressions) > 0 {
		return fmt.Errorf("median regression over %.0f%% threshold:\n  %s",
			threshold, strings.Join(regressions, "\n  "))
	}
	fmt.Fprintf(out, "gate passed: no gated benchmark regressed more than %.0f%%\n", threshold)
	return nil
}

// isGated reports whether bench name n (as printed by go test, e.g.
// "BenchmarkFoo-8" or "BenchmarkFoo/case-8") matches any gated name as
// a whole benchmark identifier.
func isGated(n string, gated []string) bool {
	for _, g := range gated {
		if n == g {
			return true
		}
		if strings.HasPrefix(n, g) && (n[len(g)] == '-' || n[len(g)] == '/') {
			return true
		}
	}
	return false
}

// parseFile collects ns/op samples per benchmark name from `go test
// -bench` output.
func parseFile(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parse(f)
}

func parse(r io.Reader) (map[string][]float64, error) {
	out := map[string][]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// BenchmarkName-8  <iters>  <value> ns/op  [<x> B/op  <y> allocs/op]
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		v, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		if fields[3] != "ns/op" {
			continue
		}
		out[fields[0]] = append(out[fields[0]], v)
	}
	return out, sc.Err()
}

// median of samples (mean of middle two for even counts).
func median(v []float64) float64 {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
