package main

import (
	"strings"
	"testing"
)

func TestRunTable1(t *testing.T) {
	var b strings.Builder
	if err := run(&b, config{table1: true}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Table 1", "E1 summary", "within 5%"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestRunCheapExperiments(t *testing.T) {
	var b strings.Builder
	cfg := config{increase: true, scaling: true, census: true, csv: true}
	if err := run(&b, cfg); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"T_{L/R}", "130nm"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
	// CSV mode: commas in tables.
	if !strings.Contains(out, ",") {
		t.Error("csv mode produced no commas")
	}
}

func TestRunFig2AndLength(t *testing.T) {
	var b strings.Builder
	if err := run(&b, config{fig2: true, length: true}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Fig. 2") || !strings.Contains(out, "E7") {
		t.Errorf("missing sections:\n%.200s", out)
	}
}
