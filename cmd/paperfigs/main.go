// Command paperfigs regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index E1-E9).
//
// Usage:
//
//	paperfigs -all           # everything (E3/E4/E5 true-optimizer runs included)
//	paperfigs -table1        # E1
//	paperfigs -fig2          # E2
//	paperfigs -fig4 [-true]  # E3/E4
//	paperfigs -increase      # E5/E6
//	paperfigs -length        # E7
//	paperfigs -opt           # E8
//	paperfigs -scaling       # E9
//	paperfigs -refit         # E10: re-derive the Eq. 9 constants
//	paperfigs -risetime      # E11: step-input assumption validity
//	paperfigs -census        # E12: RLC-needed fraction by node
//	paperfigs -table1 -csv   # CSV instead of aligned text (tables only)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rlckit/internal/paper"
	"rlckit/internal/report"
)

func main() {
	var (
		all      = flag.Bool("all", false, "run every experiment")
		table1   = flag.Bool("table1", false, "E1: Table 1")
		fig2     = flag.Bool("fig2", false, "E2: Figure 2")
		fig4     = flag.Bool("fig4", false, "E3/E4: Figure 4")
		incTrue  = flag.Bool("true", false, "include exact-engine optimizer in -fig4/-increase")
		increase = flag.Bool("increase", false, "E5/E6: Eq. 16-18 curves")
		length   = flag.Bool("length", false, "E7: delay vs length")
		opt      = flag.Bool("opt", false, "E8: closed-form optimality gap")
		scaling  = flag.Bool("scaling", false, "E9: technology scaling trend")
		refit    = flag.Bool("refit", false, "E10: re-derive the Eq. 9 constants")
		risetime = flag.Bool("risetime", false, "E11: step-input assumption validity")
		census   = flag.Bool("census", false, "E12: RLC-needed fraction by node")
		csv      = flag.Bool("csv", false, "emit tables as CSV")
	)
	flag.Parse()
	if *all {
		*table1, *fig2, *fig4, *increase, *length, *opt, *scaling = true, true, true, true, true, true, true
		*refit, *risetime, *census = true, true, true
		*incTrue = true
	}
	if !(*table1 || *fig2 || *fig4 || *increase || *length || *opt || *scaling || *refit || *risetime || *census) {
		flag.Usage()
		os.Exit(2)
	}
	cfg := config{
		table1: *table1, fig2: *fig2, fig4: *fig4, incTrue: *incTrue,
		increase: *increase, length: *length, opt: *opt, scaling: *scaling,
		refit: *refit, risetime: *risetime, census: *census, csv: *csv,
	}
	if err := run(os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "paperfigs:", err)
		os.Exit(1)
	}
}

// config bundles the experiment selection flags.
type config struct {
	table1, fig2, fig4, incTrue, increase bool
	length, opt, scaling                  bool
	refit, risetime, census               bool
	csv                                   bool
}

func emit(w io.Writer, tb *report.Table, csv bool) error {
	if csv {
		return tb.WriteCSV(w)
	}
	return tb.Render(w)
}

func run(w io.Writer, cfg config) error {
	table1, fig2, fig4, incTrue := cfg.table1, cfg.fig2, cfg.fig4, cfg.incTrue
	increase, length, opt, scaling, csv := cfg.increase, cfg.length, cfg.opt, cfg.scaling, cfg.csv
	if table1 {
		cells, tb, err := paper.Table1()
		if err != nil {
			return err
		}
		if err := emit(w, tb, csv); err != nil {
			return err
		}
		s := paper.Stats(cells)
		fmt.Fprintf(w, "\nE1 summary: max err %.2f%%, mean %.2f%%, %d/%d cells within 5%%; eq9-vs-printed decode max %.2f%%\n\n",
			s.MaxErrPct, s.MeanErrPct, s.CellsWithin5Pct, s.Cells, s.MaxModelDecodeErrPct)
	}
	if fig2 {
		pts, plot, err := paper.Fig2(nil)
		if err != nil {
			return err
		}
		if err := plot.Render(w); err != nil {
			return err
		}
		worst := 0.0
		for _, p := range pts {
			if p.RTCT <= 1 {
				if e := p.ErrPctVsEq9; e > worst || -e > worst {
					if e < 0 {
						e = -e
					}
					worst = e
				}
			}
		}
		fmt.Fprintf(w, "\nE2 summary: %d points; worst in-domain Eq. 9 error %.1f%%\n\n", len(pts), worst)
	}
	if fig4 {
		pts, plot, err := paper.Fig4(nil, incTrue)
		if err != nil {
			return err
		}
		if err := plot.Render(w); err != nil {
			return err
		}
		tb := report.NewTable("E3/E4 data", "T", "h' Eq.14", "k' Eq.15", "h' Eq.9-opt", "k' Eq.9-opt", "h' true-opt", "k' true-opt")
		for _, p := range pts {
			tb.AddRow(p.TLR, p.HpClosed, p.KpClosed, p.HpEq9, p.KpEq9, p.HpTrue, p.KpTrue)
		}
		if err := emit(w, tb, csv); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if increase {
		_, tb, err := paper.Increases(nil, incTrue)
		if err != nil {
			return err
		}
		if err := emit(w, tb, csv); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if length {
		_, tb, err := paper.LengthScaling(0, 0, 0)
		if err != nil {
			return err
		}
		if err := emit(w, tb, csv); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if opt {
		_, tb, err := paper.Optimality(nil)
		if err != nil {
			return err
		}
		if err := emit(w, tb, csv); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if scaling {
		_, tb, err := paper.ScalingTrend()
		if err != nil {
			return err
		}
		if err := emit(w, tb, csv); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if cfg.refit {
		_, tb, err := paper.Refit()
		if err != nil {
			return err
		}
		if err := emit(w, tb, csv); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if cfg.risetime {
		_, tb, err := paper.RiseTimeSensitivity(nil)
		if err != nil {
			return err
		}
		if err := emit(w, tb, csv); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if cfg.census {
		_, tb, err := paper.ScreenCensus(2026, 150)
		if err != nil {
			return err
		}
		if err := emit(w, tb, csv); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}
