// Command netsim runs a transient analysis of a small SPICE-like
// netlist deck (see internal/netlist for the format) using rlckit's MNA
// engine and writes the probed node voltages as CSV.
//
// Usage:
//
//	netsim deck.cir            # or: netsim - < deck.cir
//	netsim -method be deck.cir
//	netsim -measure deck.cir   # print 50% delay / rise / overshoot
//	netsim -ac deck.cir        # run the deck's .ac sweep (mag dB, phase)
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"math/cmplx"
	"os"

	"rlckit/internal/mna"
	"rlckit/internal/netlist"
	"rlckit/internal/units"
)

func main() {
	var (
		method  = flag.String("method", "trap", "integration method: trap or be")
		measure = flag.Bool("measure", false, "print waveform measurements instead of CSV")
		ac      = flag.Bool("ac", false, "run the deck's .ac sweep instead of transient")
		every   = flag.Int("every", 1, "output every Nth sample")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: netsim [-method trap|be] [-measure] <deck.cir|->")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *method, *measure, *ac, *every, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "netsim:", err)
		os.Exit(1)
	}
}

func run(path, method string, measure, ac bool, every int, out io.Writer) error {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	deck, err := netlist.Parse(r)
	if err != nil {
		return err
	}
	if ac {
		return runAC(deck, out)
	}
	if deck.Dt == 0 {
		return fmt.Errorf("deck has no .tran directive (use -ac for the AC sweep)")
	}
	opts := mna.Options{Dt: deck.Dt, TEnd: deck.TEnd, Probes: deck.Probes}
	switch method {
	case "trap", "":
		opts.Method = mna.Trapezoidal
	case "be":
		opts.Method = mna.BackwardEuler
	default:
		return fmt.Errorf("unknown method %q (want trap or be)", method)
	}
	if every < 1 {
		every = 1
	}
	res, err := mna.Simulate(deck.Ckt, opts)
	if err != nil {
		return err
	}
	if measure {
		for _, p := range deck.Probes {
			w, err := res.Waveform(p)
			if err != nil {
				return err
			}
			final := w.Final()
			fmt.Fprintf(out, "%s: final=%s", deck.NodeName(p), units.Format(final, "V", 4))
			if d, err := w.Delay50(final); err == nil {
				fmt.Fprintf(out, "  t50=%s", units.Format(d, "s", 4))
			}
			if rt, err := w.RiseTime(final); err == nil {
				fmt.Fprintf(out, "  rise=%s", units.Format(rt, "s", 4))
			}
			fmt.Fprintf(out, "  overshoot=%.2f%%\n", 100*w.Overshoot(final))
		}
		return nil
	}
	// CSV output.
	fmt.Fprint(out, "time")
	for _, p := range deck.Probes {
		fmt.Fprintf(out, ",%s", deck.NodeName(p))
	}
	fmt.Fprintln(out)
	cols := make([][]float64, len(deck.Probes))
	for i, p := range deck.Probes {
		if cols[i], err = res.V(p); err != nil {
			return err
		}
	}
	for i, t := range res.Time {
		if i%every != 0 {
			continue
		}
		fmt.Fprintf(out, "%.6e", t)
		for _, c := range cols {
			fmt.Fprintf(out, ",%.6e", c[i])
		}
		fmt.Fprintln(out)
	}
	return nil
}

// runAC executes the deck's .ac sweep and writes magnitude (dB) and
// phase (degrees) columns per probe.
func runAC(deck *netlist.Deck, out io.Writer) error {
	if len(deck.ACFreqs) == 0 {
		return fmt.Errorf("deck has no .ac directive")
	}
	res, err := mna.AC(deck.Ckt, deck.ACFreqs, deck.Probes)
	if err != nil {
		return err
	}
	fmt.Fprint(out, "freq")
	for _, p := range deck.Probes {
		n := deck.NodeName(p)
		fmt.Fprintf(out, ",%s_dB,%s_deg", n, n)
	}
	fmt.Fprintln(out)
	cols := make([][]complex128, len(deck.Probes))
	for i, p := range deck.Probes {
		if cols[i], err = res.H(p); err != nil {
			return err
		}
	}
	for i, f := range res.Freq {
		fmt.Fprintf(out, "%.6e", f)
		for _, c := range cols {
			mag := cmplx.Abs(c[i])
			db := math.Inf(-1)
			if mag > 0 {
				db = 20 * math.Log10(mag)
			}
			fmt.Fprintf(out, ",%.4f,%.3f", db, cmplx.Phase(c[i])*180/math.Pi)
		}
		fmt.Fprintln(out)
	}
	return nil
}
