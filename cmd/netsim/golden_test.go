package main

import (
	"path/filepath"
	"strings"
	"testing"

	"rlckit/internal/golden"
)

// TestGoldenOutputs locks the full CSV/measure/AC output of run()
// against checked-in files; refresh with `go test ./cmd/netsim -update`.
func TestGoldenOutputs(t *testing.T) {
	deck := filepath.Join("testdata", "rlc_ladder.cir")
	cases := []struct {
		name    string
		method  string
		measure bool
		ac      bool
		every   int
		file    string
	}{
		{"transient CSV", "trap", false, false, 200, "rlc_ladder.tran.csv"},
		{"backward Euler CSV", "be", false, false, 200, "rlc_ladder.be.csv"},
		{"measurements", "trap", true, false, 1, "rlc_ladder.measure.txt"},
		{"AC sweep", "trap", false, true, 1, "rlc_ladder.ac.csv"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var b strings.Builder
			if err := run(deck, tc.method, tc.measure, tc.ac, tc.every, &b); err != nil {
				t.Fatal(err)
			}
			golden.Assert(t, tc.file, []byte(b.String()))
		})
	}
}
