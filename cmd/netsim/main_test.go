package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testDeck = `
Vin in 0 STEP 1 10p
R1 in out 1k
C1 out 0 1p
.tran 5p 8n
.ac 1e6 1e10 5
.probe out
`

func writeDeck(t *testing.T) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "deck.cir")
	if err := os.WriteFile(p, []byte(testDeck), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTransientCSV(t *testing.T) {
	var b strings.Builder
	if err := run(writeDeck(t), "trap", false, false, 100, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "time,out\n") {
		t.Errorf("bad header:\n%.80s", out)
	}
	if len(strings.Split(out, "\n")) < 10 {
		t.Error("too few samples")
	}
}

func TestMeasureMode(t *testing.T) {
	var b strings.Builder
	if err := run(writeDeck(t), "be", true, false, 1, &b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"out:", "t50=", "rise=", "overshoot="} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("measure output missing %q:\n%s", want, b.String())
		}
	}
}

func TestACMode(t *testing.T) {
	var b strings.Builder
	if err := run(writeDeck(t), "trap", false, true, 1, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "freq,out_dB,out_deg\n") {
		t.Errorf("bad AC header:\n%.80s", b.String())
	}
}

func TestBadMethodAndMissingFile(t *testing.T) {
	var b strings.Builder
	if err := run(writeDeck(t), "rk4", false, false, 1, &b); err == nil {
		t.Error("bad method accepted")
	}
	if err := run("/nonexistent/deck.cir", "trap", false, false, 1, &b); err == nil {
		t.Error("missing file accepted")
	}
}

func TestACModeWithoutDirective(t *testing.T) {
	p := filepath.Join(t.TempDir(), "noac.cir")
	deck := "Vin in 0 DC 1\nR1 in 0 1k\n.tran 1p 1n\n.probe in\n"
	if err := os.WriteFile(p, []byte(deck), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run(p, "trap", false, true, 1, &b); err == nil {
		t.Error("AC without .ac accepted")
	}
}
