// Command netsweep runs a chip-scale Monte Carlo sweep: delay,
// inductance screening and (optionally) repeater analysis over a
// population of nets × technology corners × process-variation samples,
// printing population summary tables (the paper's Table-1-style
// statistics over a net population) and optionally writing every sample
// as CSV.
//
// The population is either drawn at a technology node (-node/-nets) or
// read from a net spec file (-spec): a CSV with one net per line,
//
//	name,rt,lt,ct,length,rtr,cl
//
// where values accept engineering notation ("1k", "100n", "1p", "10m").
// Lines starting with '#' (and an optional header line starting with
// "name,") are skipped.
//
// Usage:
//
//	netsweep -node 250nm -nets 1000 -samples 8 -seed 1 -csv out.csv
//	netsweep -node 130nm -nets 10000 -corners tt,ff,ss -repeaters
//	netsweep -spec nets.csv -rise 30p -sigma 0.15
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"rlckit/internal/netgen"
	"rlckit/internal/sweep"
	"rlckit/internal/tech"
	"rlckit/internal/tline"
	"rlckit/internal/units"
)

// usageError marks failures caused by how the command was invoked (bad
// flag values, an empty population) rather than by the analysis: main
// reports them with a usage pointer and exit status 2, the convention
// the flag package itself uses for unknown flags.
type usageError struct{ err error }

func (u usageError) Error() string { return u.err.Error() }
func (u usageError) Unwrap() error { return u.err }

func usagef(format string, args ...any) error {
	return usageError{fmt.Errorf(format, args...)}
}

func usage() {
	fmt.Fprint(flag.CommandLine.Output(), `usage: netsweep [flags]

Runs delay, inductance-screening and (optionally) repeater analysis over
a population of nets × technology corners × Monte Carlo samples, and
prints population summary tables. The population is drawn at a
technology node (-node/-nets) or read from a -spec CSV with lines of
"name,rt,lt,ct,length,rtr,cl".

  netsweep -node 250nm -nets 1000 -samples 8 -seed 1 -csv out.csv
  netsweep -node 130nm -nets 10000 -corners tt,ff,ss -repeaters
  netsweep -spec nets.csv -rise 30p -sigma 0.15

Flags:
`)
	flag.PrintDefaults()
}

type options struct {
	node     string
	nets     int
	spec     string
	corners  string
	samples  int
	seed     int64
	sigma    string
	drvSigma string
	rise     string
	workers  int
	csvPath  string
	repeat   bool
	exact    bool
}

func main() {
	var o options
	flag.StringVar(&o.node, "node", "250nm", "technology node for -nets and -repeaters")
	flag.IntVar(&o.nets, "nets", 1000, "random net population size (ignored with -spec)")
	flag.StringVar(&o.spec, "spec", "", "net spec CSV (name,rt,lt,ct,length,rtr,cl)")
	flag.StringVar(&o.corners, "corners", "tt,ff,ss", "comma-separated corner names (tt, ff, ss)")
	flag.IntVar(&o.samples, "samples", 4, "Monte Carlo draws per net and corner")
	flag.Int64Var(&o.seed, "seed", 1, "sweep seed (population and Monte Carlo)")
	flag.StringVar(&o.sigma, "sigma", "0.1", "log-normal sigma on per-unit-length R, L, C")
	flag.StringVar(&o.drvSigma, "drive-sigma", "0.1", "log-normal sigma on driver resistance")
	flag.StringVar(&o.rise, "rise", "50p", "input rise time for inductance screening")
	flag.IntVar(&o.workers, "workers", 0, "worker pool size (0 = GOMAXPROCS)")
	flag.StringVar(&o.csvPath, "csv", "", "write per-sample CSV to this file")
	flag.BoolVar(&o.repeat, "repeaters", false, "include repeater-insertion analysis")
	flag.BoolVar(&o.exact, "exact", false, "use the exact-engine fallback outside the Eq. 9 domain (slow)")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "netsweep: unexpected argument %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}
	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "netsweep:", err)
		if errors.As(err, &usageError{}) {
			fmt.Fprintln(os.Stderr, "run 'netsweep -h' for usage")
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func run(o options, out io.Writer) error {
	node, err := tech.Lookup(o.node)
	if err != nil {
		return usageError{err}
	}
	rise, err := units.Parse(o.rise)
	if err != nil {
		return usagef("-rise: %w", err)
	}
	sigma, err := units.Parse(o.sigma)
	if err != nil {
		return usagef("-sigma: %w", err)
	}
	drvSigma, err := units.Parse(o.drvSigma)
	if err != nil {
		return usagef("-drive-sigma: %w", err)
	}
	corners, err := parseCorners(o.corners)
	if err != nil {
		return usageError{err}
	}

	var nets []netgen.Net
	if o.spec != "" {
		f, err := os.Open(o.spec)
		if err != nil {
			return err
		}
		defer f.Close()
		if nets, err = parseSpec(f); err != nil {
			return fmt.Errorf("%s: %w", o.spec, err)
		}
		if len(nets) == 0 {
			return usagef("%s: spec contains no nets", o.spec)
		}
	} else {
		if o.nets < 1 {
			return usagef("-nets must be positive, got %d", o.nets)
		}
		if nets, err = netgen.RandomBatch(o.seed, node, o.nets); err != nil {
			return err
		}
	}

	cfg := sweep.Config{
		RiseTime: rise,
		Corners:  corners,
		MC: sweep.MonteCarlo{
			Samples: o.samples, Seed: o.seed,
			RSigma: sigma, LSigma: sigma, CSigma: sigma, DriveSigma: drvSigma,
		},
		Workers: o.workers,
		Exact:   o.exact,
	}
	if o.repeat {
		b := node.Buffer()
		cfg.Buffer = &b
	}
	res, err := sweep.Run(nets, cfg)
	if err != nil {
		return err
	}
	if err := res.RenderSummary(out); err != nil {
		return err
	}
	if o.csvPath != "" {
		f, err := os.Create(o.csvPath)
		if err != nil {
			return err
		}
		bw := bufio.NewWriter(f)
		if err := res.WriteCSV(bw); err != nil {
			f.Close()
			return err
		}
		if err := bw.Flush(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nwrote %d samples to %s\n", len(res.Samples), o.csvPath)
	}
	return nil
}

// parseCorners resolves a comma-separated corner-name list against the
// default corner set.
func parseCorners(list string) ([]sweep.Corner, error) {
	known := map[string]sweep.Corner{}
	for _, c := range sweep.DefaultCorners() {
		known[c.Name] = c
	}
	var out []sweep.Corner
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		c, ok := known[name]
		if !ok {
			return nil, fmt.Errorf("unknown corner %q (have tt, ff, ss)", name)
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no corners in %q", list)
	}
	return out, nil
}

// parseSpec reads a net spec CSV: name,rt,lt,ct,length,rtr,cl.
func parseSpec(r io.Reader) ([]netgen.Net, error) {
	var nets []netgen.Net
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "name,") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != 7 {
			return nil, fmt.Errorf("line %d: want 7 fields (name,rt,lt,ct,length,rtr,cl), got %d", lineNo, len(fields))
		}
		vals := make([]float64, 6)
		for i, f := range fields[1:] {
			v, err := units.Parse(strings.TrimSpace(f))
			if err != nil {
				return nil, fmt.Errorf("line %d field %d: %w", lineNo, i+2, err)
			}
			vals[i] = v
		}
		rt, lt, ct, length, rtr, cl := vals[0], vals[1], vals[2], vals[3], vals[4], vals[5]
		ln := tline.FromTotals(rt, lt, ct, length)
		if err := ln.Validate(); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		nets = append(nets, netgen.Net{
			Name:  strings.TrimSpace(fields[0]),
			Line:  ln,
			Drive: tline.Drive{Rtr: rtr, CL: cl},
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(nets) == 0 {
		return nil, usagef("spec contains no nets")
	}
	return nets, nil
}
