package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rlckit/internal/golden"
)

func defaultOpts() options {
	return options{
		node: "250nm", nets: 40, corners: "tt,ff,ss", samples: 2, seed: 1,
		sigma: "0.1", drvSigma: "0.1", rise: "50p",
	}
}

// TestGoldenRandomPopulation locks the summary tables of a seeded
// random-population sweep; the output is deterministic at every worker
// count. Refresh with `go test ./cmd/netsweep -update`.
func TestGoldenRandomPopulation(t *testing.T) {
	o := defaultOpts()
	o.repeat = true
	var b strings.Builder
	if err := run(o, &b); err != nil {
		t.Fatal(err)
	}
	golden.Assert(t, "random40.txt", []byte(b.String()))

	// The identical sweep pinned to one worker must render the same
	// bytes (aggregate statistics are worker-count invariant).
	o.workers = 1
	var b1 strings.Builder
	if err := run(o, &b1); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b.String() {
		t.Error("workers=1 output differs from default workers")
	}
}

// TestGoldenSpecPopulation sweeps the checked-in net spec and locks
// both the summary and the per-sample CSV.
func TestGoldenSpecPopulation(t *testing.T) {
	o := defaultOpts()
	o.spec = filepath.Join("testdata", "busnets.csv")
	o.csvPath = filepath.Join(t.TempDir(), "out.csv")
	var b strings.Builder
	if err := run(o, &b); err != nil {
		t.Fatal(err)
	}
	out := strings.ReplaceAll(b.String(), o.csvPath, "OUT.csv")
	golden.Assert(t, "busnets.txt", []byte(out))
	csv, err := os.ReadFile(o.csvPath)
	if err != nil {
		t.Fatal(err)
	}
	golden.Assert(t, "busnets.samples.csv", csv)
}

func TestBadInputs(t *testing.T) {
	var b strings.Builder
	o := defaultOpts()
	o.node = "90nm"
	if err := run(o, &b); err == nil {
		t.Error("unknown node accepted")
	}
	o = defaultOpts()
	o.corners = "tt,weird"
	if err := run(o, &b); err == nil {
		t.Error("unknown corner accepted")
	}
	o = defaultOpts()
	o.rise = "fast"
	if err := run(o, &b); err == nil {
		t.Error("bad rise time accepted")
	}
	o = defaultOpts()
	o.nets = 0
	if err := run(o, &b); err == nil {
		t.Error("zero nets accepted")
	}
	o = defaultOpts()
	o.spec = "/nonexistent/nets.csv"
	if err := run(o, &b); err == nil {
		t.Error("missing spec accepted")
	}
	o = defaultOpts()
	empty := filepath.Join(t.TempDir(), "empty.csv")
	if err := os.WriteFile(empty, []byte("# only comments\nname,rt,lt,ct,length,rtr,cl\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	o.spec = empty
	err := run(o, &b)
	if err == nil {
		t.Error("empty spec accepted")
	} else if !errors.As(err, &usageError{}) {
		t.Errorf("empty spec is not a usage error: %v", err)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"onlyname\n",
		"n,1k,100n,1p,10m,250\n",
		"n,1k,100n,1p,10m,250,zzz\n",
		"n,-1k,100n,1p,10m,250,0.5p\n",
	} {
		if _, err := parseSpec(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
	nets, err := parseSpec(strings.NewReader(
		"# comment\nname,rt,lt,ct,length,rtr,cl\nn1,1k,100n,1p,10m,250,0.5p\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(nets) != 1 || nets[0].Name != "n1" {
		t.Fatalf("parsed %+v", nets)
	}
}
