package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestMain lets the test binary stand in for the real netsweep binary:
// with NETSWEEP_RUN_MAIN=1 it runs main() on its own os.Args, which is
// how the exit-status regression tests below observe real exit codes.
func TestMain(m *testing.M) {
	if os.Getenv("NETSWEEP_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// netsweep re-executes the test binary as netsweep with args.
func netsweep(t *testing.T, args ...string) (exit int, stdout, stderr string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "NETSWEEP_RUN_MAIN=1")
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running %v: %v", args, err)
		}
		return ee.ExitCode(), out.String(), errb.String()
	}
	return 0, out.String(), errb.String()
}

// TestExitCodes is the regression test for the "empty table" bug class:
// unknown flags, bad flag values and empty populations must exit
// non-zero with a usage message, never print an empty summary.
func TestExitCodes(t *testing.T) {
	emptySpec := filepath.Join(t.TempDir(), "empty.csv")
	if err := os.WriteFile(emptySpec, []byte("name,rt,lt,ct,length,rtr,cl\n# no nets\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	badSpec := filepath.Join(t.TempDir(), "bad.csv")
	if err := os.WriteFile(badSpec, []byte("n1,1k,100n\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name     string
		args     []string
		wantExit int
		wantErr  string // must appear on stderr
	}{
		{"unknown flag", []string{"-bogus"}, 2, "usage: netsweep"},
		{"positional arg", []string{"extra"}, 2, "unexpected argument"},
		{"zero nets", []string{"-nets", "0"}, 2, "-nets must be positive"},
		{"negative nets", []string{"-nets", "-5"}, 2, "run 'netsweep -h' for usage"},
		{"empty spec", []string{"-spec", emptySpec}, 2, "spec contains no nets"},
		{"unknown corner", []string{"-corners", "xx"}, 2, "unknown corner"},
		{"empty corners", []string{"-corners", ",,"}, 2, "no corners"},
		{"bad rise", []string{"-rise", "oops"}, 2, "-rise"},
		{"unknown node", []string{"-node", "9nm"}, 2, "run 'netsweep -h' for usage"},
		{"malformed spec line", []string{"-spec", badSpec}, 1, "want 7 fields"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			exit, stdout, stderr := netsweep(t, c.args...)
			if exit != c.wantExit {
				t.Errorf("exit = %d, want %d (stderr: %s)", exit, c.wantExit, stderr)
			}
			if !strings.Contains(stderr, c.wantErr) {
				t.Errorf("stderr %q missing %q", stderr, c.wantErr)
			}
			if strings.Contains(stdout, "Population screening") {
				t.Errorf("failed invocation still printed a summary table:\n%s", stdout)
			}
		})
	}
}

// TestExitZeroOnSuccess pins the success path of the same re-exec
// harness, so the non-zero assertions above can't pass vacuously.
func TestExitZeroOnSuccess(t *testing.T) {
	exit, stdout, stderr := netsweep(t, "-nets", "5", "-samples", "1")
	if exit != 0 {
		t.Fatalf("exit = %d, stderr: %s", exit, stderr)
	}
	if !strings.Contains(stdout, "Population screening") {
		t.Errorf("success run missing summary table:\n%s", stdout)
	}
}

// TestUsageMentionsSpecFormat keeps -h self-documenting.
func TestUsageMentionsSpecFormat(t *testing.T) {
	exit, _, stderr := netsweep(t, "-h")
	if exit != 0 && exit != 2 {
		t.Fatalf("-h exit = %d", exit)
	}
	for _, want := range []string{"usage: netsweep", "name,rt,lt,ct,length,rtr,cl", "-corners"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("usage missing %q:\n%s", want, stderr)
		}
	}
}
