package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rlckit"
	"rlckit/internal/golden"
)

const testScript = `{
  "tree": {
    "root_c": 5e-15,
    "branches": [
      {"parent": 0, "r": 20, "l": 5e-10, "c": 4e-14},
      {"parent": 1, "r": 15, "l": 4e-10, "c": 3e-14},
      {"parent": 1, "r": 40, "l": 1e-9, "c": 6e-14},
      {"parent": 3, "r": 40, "l": 1e-9, "c": 6e-14}
    ],
    "sinks": [{"node": 2, "cl": 2e-14}, {"node": 4, "cl": 3.5e-14}]
  },
  "drive": {"rtr": 80},
  "engine": "mna",
  "steps": [
    [{"op": "branch", "node": 2, "r": 18, "l": 3.5e-10}],
    [{"op": "driver", "rtr": 70}, {"op": "load", "node": 4, "cl": 4e-14}]
  ]
}`

func writeScript(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "script.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestGoldenReplay locks the replay output per engine. Refresh with
// `go test ./cmd/whatif -update`.
func TestGoldenReplay(t *testing.T) {
	for _, engine := range []string{"closed", "mna", "reduced"} {
		t.Run(engine, func(t *testing.T) {
			o := options{engine: engine, verbose: true, path: writeScript(t, testScript)}
			var b strings.Builder
			if err := run(o, &b); err != nil {
				t.Fatal(err)
			}
			golden.Assert(t, "replay_"+engine+".txt", []byte(b.String()))
		})
	}
}

// TestReplayMatchesFromScratch re-derives the final step's table by
// building the fully-edited tree and analyzing it cold: the session
// replay must land on the identical delays.
func TestReplayMatchesFromScratch(t *testing.T) {
	o := options{engine: "mna", verbose: true, path: writeScript(t, testScript)}
	var b strings.Builder
	if err := run(o, &b); err != nil {
		t.Fatal(err)
	}

	// The edited net: branch 2 → r 18, l 3.5e-10; rtr 70; sink 4 cl 4e-14.
	tr, err := rlckit.NewTree(5e-15)
	if err != nil {
		t.Fatal(err)
	}
	for _, br := range [][4]float64{
		{0, 20, 5e-10, 4e-14},
		{1, 18, 3.5e-10, 3e-14},
		{1, 40, 1e-9, 6e-14},
		{3, 40, 1e-9, 6e-14},
	} {
		if _, err := tr.Add(int(br[0]), br[1], br[2], br[3]); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.MarkSink(2, 2e-14); err != nil {
		t.Fatal(err)
	}
	if err := tr.MarkSink(4, 4e-14); err != nil {
		t.Fatal(err)
	}
	sess, err := rlckit.OpenSession(tr, rlckit.TreeDrive{Rtr: 70}, rlckit.TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	res, err := sess.Result(context.Background(), rlckit.TreeEngineMNA)
	if err != nil {
		t.Fatal(err)
	}

	// Render the cold table exactly as printStep does and require the
	// replay's final step to contain it verbatim.
	var want strings.Builder
	printStep(&want, "step 2 (2 edits)", res, true)
	if !strings.Contains(b.String(), want.String()) {
		t.Errorf("replay's final step differs from the from-scratch analysis\nwant:\n%s\ngot:\n%s",
			want.String(), b.String())
	}
}

// TestScriptErrors: malformed scripts are usage errors, not panics.
func TestScriptErrors(t *testing.T) {
	cases := []struct {
		name, body, wantErr string
	}{
		{"empty tree", `{"tree":{"root_c":1e-15},"drive":{"rtr":50},"steps":[]}`, "no branches"},
		{"unknown field", `{"tree":{"root_c":1e-15,"branches":[{"parent":0,"r":1,"l":1e-10,"c":1e-15}]},"drive":{"rtr":50},"bogus":1}`, "bogus"},
		{"bad op", `{"tree":{"root_c":1e-15,"branches":[{"parent":0,"r":1,"l":1e-10,"c":1e-15}],"sinks":[{"node":1,"cl":1e-15}]},"drive":{"rtr":50},"steps":[[{"op":"teleport"}]]}`, "step 1"},
		{"negative r", `{"tree":{"root_c":1e-15,"branches":[{"parent":0,"r":-1,"l":1e-10,"c":1e-15}],"sinks":[{"node":1,"cl":1e-15}]},"drive":{"rtr":50},"steps":[]}`, "branch 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := options{path: writeScript(t, tc.body)}
			var b strings.Builder
			err := run(o, &b)
			if err == nil {
				t.Fatal("expected an error")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestBadEngineIsUsageError: -engine typos must be usage errors.
func TestBadEngineIsUsageError(t *testing.T) {
	o := options{engine: "warp", path: writeScript(t, testScript)}
	var b strings.Builder
	err := run(o, &b)
	if err == nil || !strings.Contains(err.Error(), "unknown engine") {
		t.Fatalf("want unknown-engine usage error, got %v", err)
	}
}
