package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestMain lets the test binary stand in for the real whatif binary:
// with WHATIF_RUN_MAIN=1 it runs main() on its own os.Args, which is
// how the exit-status regression tests below observe real exit codes.
func TestMain(m *testing.M) {
	if os.Getenv("WHATIF_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// whatif re-executes the test binary as whatif with args.
func whatif(t *testing.T, args ...string) (exit int, stdout, stderr string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "WHATIF_RUN_MAIN=1")
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running %v: %v", args, err)
		}
		return ee.ExitCode(), out.String(), errb.String()
	}
	return 0, out.String(), errb.String()
}

// TestExitCodes: invocation mistakes must exit 2 with a usage pointer.
func TestExitCodes(t *testing.T) {
	script := filepath.Join(t.TempDir(), "s.json")
	if err := os.WriteFile(script, []byte(testScript), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"unknown flag", []string{"-bogus", script}, 2},
		{"no script", []string{}, 2},
		{"two scripts", []string{script, script}, 2},
		{"missing file", []string{filepath.Join(t.TempDir(), "nope.json")}, 2},
		{"bad engine", []string{"-engine", "warp", script}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			exit, stdout, stderr := whatif(t, tc.args...)
			if exit != tc.want {
				t.Errorf("exit %d, want %d (stderr: %s)", exit, tc.want, stderr)
			}
			if stdout != "" {
				t.Errorf("usage failure printed to stdout: %q", stdout)
			}
			if !strings.Contains(stderr, "usage") && !strings.Contains(stderr, "whatif") {
				t.Errorf("stderr lacks a usage pointer: %q", stderr)
			}
		})
	}
}

// TestHappyPathExitZero replays the test script end to end, reading
// from stdin via "-".
func TestHappyPathExitZero(t *testing.T) {
	cmd := exec.Command(os.Args[0], "-engine", "closed", "-")
	cmd.Env = append(os.Environ(), "WHATIF_RUN_MAIN=1")
	cmd.Stdin = strings.NewReader(testScript)
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		t.Fatalf("exit error: %v, stderr: %s", err, errb.String())
	}
	if !strings.Contains(out.String(), "step 2 (2 edits)") {
		t.Errorf("missing step line in output:\n%s", out.String())
	}
}
