// Command whatif replays an edit script against a stateful what-if
// session: the tree is loaded once, then each step's edit batch is
// applied and the per-sink delay table re-read through the session's
// incremental fast paths (tree-moment updates, reduced-model
// reprojection, frozen-ordering re-factorization) instead of a
// from-scratch analysis per step.
//
// The script is JSON:
//
//	{
//	  "tree": {
//	    "root_c": 5e-15,
//	    "branches": [{"parent": 0, "r": 20, "l": 5e-10, "c": 4e-14}],
//	    "sinks":    [{"node": 1, "cl": 2e-14}]
//	  },
//	  "drive":  {"rtr": 80},
//	  "engine": "mna",
//	  "steps": [
//	    [{"op": "branch", "node": 1, "r": 18, "l": 3.5e-10}],
//	    [{"op": "driver", "rtr": 70}, {"op": "load", "node": 1, "cl": 4e-14}]
//	  ]
//	}
//
// Branch nodes are 1-based tree indices in declaration order (node 0
// is the root). Each step is one atomic batch: either every edit in it
// applies or none do. Results are identical to analyzing the edited
// tree from scratch with the same engine.
//
// Usage:
//
//	whatif script.json
//	whatif -engine reduced -v script.json
//	generate-edits | whatif -
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"rlckit"
	"rlckit/internal/units"
)

// usageError marks failures caused by how the command was invoked;
// main reports them with a usage pointer and exit status 2.
type usageError struct{ err error }

func (u usageError) Error() string { return u.err.Error() }
func (u usageError) Unwrap() error { return u.err }

func usagef(format string, args ...any) error {
	return usageError{fmt.Errorf(format, args...)}
}

func usage() {
	fmt.Fprint(flag.CommandLine.Output(), `usage: whatif [flags] script.json

Replays a what-if edit script: loads the script's RLC tree into a
session, applies each step's edit batch, and prints the re-analyzed
delay and skew after every step. "-" reads the script from stdin.

  whatif script.json
  whatif -engine reduced -v script.json

Flags:
`)
	flag.PrintDefaults()
}

type options struct {
	engine  string
	verbose bool
	path    string
}

func main() {
	var o options
	flag.StringVar(&o.engine, "engine", "", "delay engine (closed, mna, reduced); overrides the script's")
	flag.BoolVar(&o.verbose, "v", false, "print the per-sink delay table after every step")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "whatif: expected exactly one script argument")
		flag.Usage()
		os.Exit(2)
	}
	o.path = flag.Arg(0)
	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "whatif:", err)
		if errors.As(err, &usageError{}) {
			fmt.Fprintln(os.Stderr, "run 'whatif -h' for usage")
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// script is the whatif input document.
type script struct {
	Tree   treeSpec               `json:"tree"`
	Drive  driveSpec              `json:"drive"`
	Engine string                 `json:"engine,omitempty"`
	Steps  [][]rlckit.SessionEdit `json:"steps"`
}

type treeSpec struct {
	RootC    float64      `json:"root_c"`
	Branches []branchSpec `json:"branches"`
	Sinks    []sinkSpec   `json:"sinks"`
}

type branchSpec struct {
	Parent int     `json:"parent"`
	R      float64 `json:"r"`
	L      float64 `json:"l"`
	C      float64 `json:"c"`
}

type sinkSpec struct {
	Node int     `json:"node"`
	CL   float64 `json:"cl"`
}

type driveSpec struct {
	Rtr float64 `json:"rtr"`
}

func run(o options, out io.Writer) error {
	sc, err := loadScript(o.path)
	if err != nil {
		return err
	}
	name := o.engine
	if name == "" {
		name = sc.Engine
	}
	if name == "" {
		name = "closed"
	}
	engine, err := parseEngine(name)
	if err != nil {
		return usageError{err}
	}
	t, err := buildTree(sc.Tree)
	if err != nil {
		return usageError{fmt.Errorf("script tree: %w", err)}
	}
	drv := rlckit.TreeDrive{Rtr: sc.Drive.Rtr}
	sess, err := rlckit.OpenSession(t, drv, rlckit.TreeConfig{})
	if err != nil {
		return usageError{fmt.Errorf("open session: %w", err)}
	}
	defer sess.Close()

	ctx := context.Background()
	res, err := sess.Result(ctx, engine)
	if err != nil {
		return fmt.Errorf("initial analysis: %w", err)
	}
	fmt.Fprintf(out, "loaded: %d nodes, %d sinks, engine %s\n",
		t.Len(), len(t.Sinks()), engineLabel(res))
	printStep(out, "open", res, o.verbose)

	for i, batch := range sc.Steps {
		if err := sess.Apply(batch); err != nil {
			return fmt.Errorf("step %d: %w", i+1, err)
		}
		res, err := sess.Result(ctx, engine)
		if err != nil {
			return fmt.Errorf("step %d: %w", i+1, err)
		}
		printStep(out, fmt.Sprintf("step %d (%d edits)", i+1, len(batch)), res, o.verbose)
	}

	st := sess.Stats()
	fmt.Fprintf(out, "\n%d steps, %d edits applied; fast paths: %d reduced, %d recerts (%d failed), %d exact fallbacks, %d rebuilds\n",
		len(sc.Steps), st.Edits, st.ReducedFast, st.Recerts, st.RecertFails, st.Fallbacks, st.Rebuilds)
	return nil
}

func loadScript(path string) (*script, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, usageError{err}
		}
		defer f.Close()
		r = f
	}
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var sc script
	if err := dec.Decode(&sc); err != nil {
		return nil, usagef("script: %w", err)
	}
	if len(sc.Tree.Branches) == 0 {
		return nil, usagef("script: tree has no branches")
	}
	return &sc, nil
}

func buildTree(spec treeSpec) (*rlckit.RLCTree, error) {
	t, err := rlckit.NewTree(spec.RootC)
	if err != nil {
		return nil, err
	}
	for i, b := range spec.Branches {
		if _, err := t.Add(b.Parent, b.R, b.L, b.C); err != nil {
			return nil, fmt.Errorf("branch %d: %w", i, err)
		}
	}
	for _, s := range spec.Sinks {
		if err := t.MarkSink(s.Node, s.CL); err != nil {
			return nil, fmt.Errorf("sink %d: %w", s.Node, err)
		}
	}
	return t, nil
}

func parseEngine(s string) (rlckit.TreeEngine, error) {
	switch s {
	case "closed":
		return rlckit.TreeEngineClosed, nil
	case "mna":
		return rlckit.TreeEngineMNA, nil
	case "reduced":
		return rlckit.TreeEngineReduced, nil
	default:
		return 0, fmt.Errorf("unknown engine %q (have closed, mna, reduced)", s)
	}
}

func engineLabel(res *rlckit.TreeResult) string {
	if res.Fallback {
		return "mna (reduced fell back)"
	}
	if res.Reduced {
		return fmt.Sprintf("reduced (q=%d of n=%d, err %.3g%%)",
			res.MORInfo.Q, res.MORInfo.N, res.MORInfo.EstErrPct)
	}
	return res.Engine.String()
}

func printStep(out io.Writer, label string, res *rlckit.TreeResult, verbose bool) {
	fmt.Fprintf(out, "%-20s  critical %12s   skew %12s\n",
		label, units.Format(res.MaxDelay, "s", 4), units.Format(res.MaxSkew, "s", 4))
	if !verbose {
		return
	}
	for _, s := range res.Sinks {
		fmt.Fprintf(out, "    sink %4d  %12s\n", s.Node, units.Format(s.Delay, "s", 4))
	}
}
