package rlckit

import (
	"testing"
)

// TestPropertyDelayAutoTracksSimulation checks, over a random net
// population, that the production estimator stays within a few percent
// of the exact transmission-line engine whenever it trusts the closed
// form (inside the validated accuracy domain, away from the reflection
// plateau), and that it never errors on physically plausible nets.
func TestPropertyDelayAutoTracksSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("exact-engine population check")
	}
	node, err := Technology("250nm")
	if err != nil {
		t.Fatal(err)
	}
	nets, err := RandomNets(1234, node, 40)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for i, n := range nets {
		auto, closedForm, err := DelayAuto(n.Line, n.Drive)
		if err != nil {
			t.Fatalf("net %d (%s): DelayAuto: %v", i, n.Name, err)
		}
		if !closedForm {
			continue // estimator already used the exact engine
		}
		sim, err := DelaySimulated(n.Line, n.Drive)
		if err != nil {
			t.Fatalf("net %d (%s): DelaySimulated: %v", i, n.Name, err)
		}
		relErr := (auto - sim) / sim
		if relErr < 0 {
			relErr = -relErr
		}
		if relErr > 0.05 {
			t.Errorf("net %d (%s): closed form err %.2f%% vs simulation (auto=%g sim=%g)",
				i, n.Name, 100*relErr, auto, sim)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("population exercised no closed-form nets")
	}
	t.Logf("closed form within 5%% of simulation on %d/%d nets", checked, len(nets))
}

// TestPropertyRCNeverExceedsRLCWhenUnderdamped checks the paper's
// directional claim on a large population: for underdamped nets (ζ < 1,
// inductive behavior), the RC-only delay underestimates — it never
// exceeds the inductance-aware delay. Ignoring inductance can only make
// predicted delay optimistic, never pessimistic.
func TestPropertyRCNeverExceedsRLCWhenUnderdamped(t *testing.T) {
	node, err := Technology("250nm")
	if err != nil {
		t.Fatal(err)
	}
	nets, err := RandomNets(4321, node, 500)
	if err != nil {
		t.Fatal(err)
	}
	underdamped := 0
	for i, n := range nets {
		p, err := Analyze(n.Line, n.Drive)
		if err != nil {
			t.Fatalf("net %d: %v", i, err)
		}
		if p.Zeta >= 1 {
			continue
		}
		underdamped++
		rlc, err := Delay(n.Line, n.Drive)
		if err != nil {
			t.Fatalf("net %d: %v", i, err)
		}
		rc := DelayRCOnly(n.Line, n.Drive)
		if rc > rlc*(1+1e-12) {
			t.Errorf("net %d (%s): ζ=%.3f but RC delay %g > RLC delay %g",
				i, n.Name, p.Zeta, rc, rlc)
		}
	}
	if underdamped == 0 {
		t.Fatal("population had no underdamped nets")
	}
	t.Logf("RC ≤ RLC held on all %d underdamped nets of %d", underdamped, len(nets))
}
