package rlckit_test

import (
	"math"
	"math/rand"
	"testing"

	"rlckit/internal/core"
	"rlckit/internal/mna"
	"rlckit/internal/numeric"
	"rlckit/internal/paper"
	"rlckit/internal/refeng"
	"rlckit/internal/repeater"
	"rlckit/internal/tline"
)

// --- One benchmark per paper artifact (experiment ids per DESIGN.md) ---

// BenchmarkTable1 regenerates E1: the full 36-cell Eq. 9 vs simulation
// grid. Reported metrics: worst and mean model error in percent.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, _, err := paper.Table1()
		if err != nil {
			b.Fatal(err)
		}
		s := paper.Stats(cells)
		b.ReportMetric(s.MaxErrPct, "worst-err-%")
		b.ReportMetric(s.MeanErrPct, "mean-err-%")
	}
}

// BenchmarkFig2 regenerates E2: scaled delay vs ζ families.
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, _, err := paper.Fig2([]float64{0.4, 0.9, 1.5, 2.1})
		if err != nil {
			b.Fatal(err)
		}
		worst := 0.0
		for _, p := range pts {
			if p.RTCT <= 1 {
				e := p.ErrPctVsEq9
				if e < 0 {
					e = -e
				}
				if e > worst {
					worst = e
				}
			}
		}
		b.ReportMetric(worst, "worst-err-%")
	}
}

// BenchmarkFig4h regenerates E3: the h′(T) error factor curve against
// the Eq. 9-objective optimizer.
func BenchmarkFig4h(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, _, err := paper.Fig4([]float64{0.5, 2, 5}, false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[len(pts)-1].HpClosed, "hprime@T5")
	}
}

// BenchmarkFig4k regenerates E4: the k′(T) error factor curve.
func BenchmarkFig4k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, _, err := paper.Fig4([]float64{0.5, 2, 5}, false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[len(pts)-1].KpClosed, "kprime@T5")
	}
}

// BenchmarkDelayIncrease regenerates E5: the Eq. 16 delay-increase curve
// (exact engine, closed-form designs).
func BenchmarkDelayIncrease(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, _, err := paper.Increases([]float64{1, 3, 5}, false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[1].DelayEq16Pct, "inc@T3-%")
	}
}

// BenchmarkAreaIncrease regenerates E6: the Eq. 18 area-increase curve
// including the paper's 154%/435% anchors.
func BenchmarkAreaIncrease(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a3 := repeater.AreaIncrease(3)
		a5 := repeater.AreaIncrease(5)
		b.ReportMetric(a3, "area@T3-%")
		b.ReportMetric(a5, "area@T5-%")
	}
}

// BenchmarkLengthScaling regenerates E7: delay vs length transition.
func BenchmarkLengthScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, _, err := paper.LengthScaling(2e-3, 8e-2, 8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[len(pts)-1].LocalExponent, "long-exponent")
		b.ReportMetric(pts[1].LocalExponent, "short-exponent")
	}
}

// BenchmarkRepeaterOptimality regenerates E8: the closed-form plan's
// delay gap to the numerical optima.
func BenchmarkRepeaterOptimality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		gaps, _, err := paper.Optimality([]float64{2})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(gaps[0].TrueGapPct, "true-gap-%")
	}
}

// BenchmarkScalingTrend regenerates E9: the technology scaling trend.
func BenchmarkScalingTrend(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, _, err := paper.ScalingTrend()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[len(pts)-1].TLR, "TLR@130nm")
	}
}

// --- Ablation benches (DESIGN.md §7) ---

// benchLine is the moderate Table-1 configuration used by ablations.
var benchLine = tline.FromTotals(1000, 1e-7, 1e-12, 0.01)
var benchDrive = tline.Drive{Rtr: 500, CL: 5e-13}

// BenchmarkAblationSegments measures the MNA engine's cost/accuracy
// trade against ladder segment count.
func BenchmarkAblationSegments(b *testing.B) {
	exact, err := refeng.DelayExactTF(benchLine, benchDrive, 0)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{20, 60, 180} {
		b.Run(map[int]string{20: "n20", 60: "n60", 180: "n180"}[n], func(b *testing.B) {
			var got float64
			for i := 0; i < b.N; i++ {
				got, err = refeng.DelayMNA(benchLine, benchDrive, refeng.MNAConfig{Segments: n})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*(got-exact)/exact, "err-%")
		})
	}
}

// BenchmarkAblationIntegrator compares trapezoidal vs backward-Euler on
// the underdamped line.
func BenchmarkAblationIntegrator(b *testing.B) {
	under := tline.FromTotals(500, 1e-6, 1e-12, 0.01)
	d := tline.Drive{Rtr: 500, CL: 1e-13}
	exact, err := refeng.DelayExactTF(under, d, 0)
	if err != nil {
		b.Fatal(err)
	}
	// A sorted slice, not a map: subtests must appear in a deterministic
	// order so -bench output is comparable run to run.
	methods := []struct {
		name string
		m    mna.Method
	}{
		{"backward-euler", mna.BackwardEuler},
		{"trapezoidal", mna.Trapezoidal},
	}
	for _, mm := range methods {
		b.Run(mm.name, func(b *testing.B) {
			var got float64
			for i := 0; i < b.N; i++ {
				got, err = refeng.DelayMNA(under, d, refeng.MNAConfig{Method: mm.m})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*(got-exact)/exact, "err-%")
		})
	}
}

// --- Engine micro-benchmarks ---

func BenchmarkEq9Delay(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Delay(benchLine, benchDrive); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactTFDelay(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := refeng.DelayExactTF(benchLine, benchDrive, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRatfunDelay(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := refeng.DelayRatfun(benchLine, benchDrive, refeng.RatfunConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMNADelay(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := refeng.DelayMNA(benchLine, benchDrive, refeng.MNAConfig{Segments: 60}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateLadder1000 is the allocation watchdog for the MNA
// step loop: a 1000-segment transient whose allocs/op — reported via
// ReportAllocs — must stay independent of the step count, i.e. the
// steady-state loop allocates nothing per timestep.
func BenchmarkSimulateLadder1000(b *testing.B) {
	lad, err := tline.BuildLadder(benchLine, benchDrive, 1000, tline.Pi, 0)
	if err != nil {
		b.Fatal(err)
	}
	_, lt, ct := benchLine.Totals()
	tLC := math.Sqrt(lt * (ct + benchDrive.CL))
	dt := tLC / 2000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mna.Simulate(lad.Ckt, mna.Options{
			Dt:     dt,
			TEnd:   500 * dt,
			Probes: []int{lad.Out},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPolyRootsLadder(b *testing.B) {
	_, lt, ct := benchLine.Totals()
	t0 := math.Sqrt(lt * (ct + benchDrive.CL))
	_, den, err := tline.LadderTF(benchLine, benchDrive, 16, tline.Pi, t0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if roots := den.Roots(); len(roots) == 0 {
			b.Fatal("no roots")
		}
	}
}

func BenchmarkBandLUSolve(b *testing.B) {
	n := 1000
	rng := rand.New(rand.NewSource(3))
	bm := numeric.NewBandMatrix(n, 2, 2)
	for i := 0; i < n; i++ {
		for j := i - 2; j <= i+2; j++ {
			if bm.InBand(i, j) {
				bm.Set(i, j, rng.NormFloat64())
			}
		}
		bm.Add(i, i, 10)
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := numeric.FactorBandLU(bm)
		if err != nil {
			b.Fatal(err)
		}
		_ = f.Solve(rhs)
	}
}

// BenchmarkRefit regenerates E10: the Eq. 9 constants re-derived from
// simulation data.
func BenchmarkRefit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _, err := paper.Refit()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Fitted.A, "A")
		b.ReportMetric(res.Fitted.C, "C")
	}
}

// BenchmarkRiseTimeSensitivity regenerates E11.
func BenchmarkRiseTimeSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, _, err := paper.RiseTimeSensitivity(nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[len(pts)-1].DelayRatio, "ratio@4x")
	}
}

// BenchmarkScreenCensus regenerates E12.
func BenchmarkScreenCensus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, _, err := paper.ScreenCensus(2026, 100)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[len(pts)-1].FractionRLC, "frac@130nm")
	}
}

// BenchmarkACAnalysisLadder measures the AC engine on an 80-segment
// ladder sweep.
func BenchmarkACAnalysisLadder(b *testing.B) {
	lad, err := tline.BuildLadder(benchLine, benchDrive, 80, tline.Pi, 0)
	if err != nil {
		b.Fatal(err)
	}
	freqs, err := mna.LogSpace(1e7, 1e10, 12)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mna.AC(lad.Ckt, freqs, []int{lad.Out}); err != nil {
			b.Fatal(err)
		}
	}
}
