// Busdesign: sweep a global bus bit across lengths, showing the
// quadratic-to-linear delay transition (paper Section II) and how the
// repeater plan changes with length.
//
// Run with: go run ./examples/busdesign
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"rlckit/internal/core"
	"rlckit/internal/netgen"
	"rlckit/internal/refeng"
	"rlckit/internal/repeater"
	"rlckit/internal/report"
	"rlckit/internal/tech"
	"rlckit/internal/units"
)

func main() {
	node := tech.Default()
	// A standard global bus wire; the driver is sized so RT stays inside
	// Eq. 9's accuracy domain over the whole sweep.
	wire := node.GlobalWire
	nets, err := netgen.LengthSweep(wire, node.Gate(50, 10), 2e-3, 4e-2, 8)
	if err != nil {
		log.Fatal(err)
	}

	tb := report.NewTable("Global bus vs length (250nm)",
		"length", "zeta", "delay(sim)", "delay(Eq.9)", "exponent", "k_opt", "h_opt")
	buf := node.Buffer()
	prevDelay, prevLen := 0.0, 0.0
	for i, n := range nets {
		p, err := core.Analyze(n.Line, n.Drive)
		if err != nil {
			log.Fatal(err)
		}
		sim, err := refeng.DelayExactTF(n.Line, n.Drive, 0)
		if err != nil {
			log.Fatal(err)
		}
		model, err := core.Delay(n.Line, n.Drive)
		if err != nil {
			log.Fatal(err)
		}
		h, k, err := repeater.ClosedFormHK(n.Line, buf)
		if err != nil {
			log.Fatal(err)
		}
		exp := math.NaN()
		if i > 0 {
			exp = math.Log(sim/prevDelay) / math.Log(n.Line.Length/prevLen)
		}
		expStr := "-"
		if !math.IsNaN(exp) {
			expStr = fmt.Sprintf("%.2f", exp)
		}
		tb.AddRow(units.Format(n.Line.Length, "m", 3), p.Zeta,
			units.Format(sim, "s", 4), units.Format(model, "s", 4),
			expStr, k, h)
		prevDelay, prevLen = sim, n.Line.Length
	}
	if err := tb.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nThe exponent column is d(ln delay)/d(ln length): ≈1 where inductance")
	fmt.Println("dominates (time-of-flight), rising toward 2 as resistance takes over —")
	fmt.Println("the paper's quadratic-to-linear observation, read right-to-left.")
}
