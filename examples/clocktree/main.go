// Clocktree: repeater insertion on a wide clock spine — the paper's
// motivating workload ("wide wires are frequently encountered in clock
// distribution networks").
//
// The example designs repeaters for a 20 mm, 2.5x-wide clock wire at
// 250 nm (T_{L/R} ≈ 4, squarely in the regime the paper calls common
// for 0.25 µm) with both the RC-only Bakoglu rules and the paper's
// inductance-aware closed forms, grades both with the exact line
// engine, and simulates the unrepeated spine driven hard to show the
// inductive ringing an RC model cannot predict.
//
// Run with: go run ./examples/clocktree
package main

import (
	"fmt"
	"log"

	"rlckit/internal/mna"
	"rlckit/internal/repeater"
	"rlckit/internal/tech"
	"rlckit/internal/tline"
	"rlckit/internal/units"
)

func main() {
	node := tech.Default()
	wire := node.GlobalWire
	wire.Width *= 2.5
	spine, err := wire.Line(units.MilliMeter(20))
	if err != nil {
		log.Fatal(err)
	}
	buf := node.Buffer()
	tlr, err := repeater.TLR(spine, buf)
	if err != nil {
		log.Fatal(err)
	}
	rt, lt, ct := spine.Totals()
	fmt.Printf("Clock spine: Rt=%s Lt=%s Ct=%s  T_{L/R}=%.2f\n",
		units.Format(rt, "Ohm", 3), units.Format(lt, "H", 3),
		units.Format(ct, "F", 3), tlr)

	for _, m := range []repeater.Model{repeater.RC, repeater.RLC} {
		plan, err := repeater.Design(spine, buf, m)
		if err != nil {
			log.Fatal(err)
		}
		d, err := repeater.TrueTotalDelay(spine, buf, plan.H, plan.K)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-3s design: k=%5.2f sections, h=%6.2f -> delay %s, area %.0f, energy %s\n",
			m, plan.K, plan.H, units.Format(d, "s", 4), plan.Area,
			units.Format(plan.SwitchEnergy, "J", 3))
	}
	di, err := repeater.DelayIncrease(spine, buf)
	if err != nil {
		log.Fatal(err)
	}
	dvo, err := repeater.DelayIncreaseVsOptimum(spine, buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Cost of the RC design: %+.1f%% delay vs RLC closed form, %+.1f%% vs true optimum, %+.1f%% repeater area\n\n",
		di, dvo, repeater.AreaIncrease(tlr))

	// Simulate a wider (6x), shorter (10 mm) unrepeated spine behind a
	// strong driver — the low-loss case where the response goes
	// underdamped.
	wideWire := node.GlobalWire
	wideWire.Width *= 6
	wideWire.Thickness *= 1.5
	wide, err := wideWire.Line(units.MilliMeter(10))
	if err != nil {
		log.Fatal(err)
	}
	drive := node.Gate(200, 30) // Rtr = R0/200 = 15 Ω
	lad, err := tline.BuildLadder(wide, drive, 120, tline.Pi, 1e-12)
	if err != nil {
		log.Fatal(err)
	}
	tof := wide.TimeOfFlight()
	res, err := mna.Simulate(lad.Ckt, mna.Options{
		Dt: tof / 400, TEnd: 40 * tof, Probes: []int{lad.Out},
	})
	if err != nil {
		log.Fatal(err)
	}
	w, err := res.Waveform(lad.Out)
	if err != nil {
		log.Fatal(err)
	}
	final := drive.Amplitude()
	t50, err := w.Delay50(final)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Unrepeated spine behind a 15 Ohm driver: t50=%s, overshoot=%.1f%% — ",
		units.Format(t50, "s", 4), 100*w.Overshoot(final))
	if w.Overshoot(final) > 0.05 {
		fmt.Println("inductive ringing an RC model would entirely miss.")
	} else {
		fmt.Println("well damped.")
	}
}
