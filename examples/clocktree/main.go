// Clocktree: per-sink delay and skew of an H-tree clock distribution
// network — the paper's motivating workload ("wide wires are
// frequently encountered in clock distribution networks"), analyzed
// with the multi-sink RLC tree engines of internal/rlctree.
//
// The example builds a seeded 16-sink H-tree at 250 nm, measures every
// sink from ONE shared MNA transient (not 16 separate simulations),
// grades the closed-form moment/two-pole estimator against it, and
// quantifies what an RC-only timing flow would get wrong about both
// delay and skew. It then perturbs the tree across process corners and
// Monte Carlo samples with the sweep engine to show how skew moves
// with process.
//
// Run with: go run ./examples/clocktree
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"

	"rlckit/internal/netgen"
	"rlckit/internal/rlctree"
	"rlckit/internal/sweep"
	"rlckit/internal/tech"
	"rlckit/internal/units"
)

func main() {
	node := tech.Default()
	rng := rand.New(rand.NewSource(42))
	tn, err := netgen.RandomTree(rng, node, netgen.TreeClockH, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d nodes, %d sinks, Ctot=%s behind Rtr=%s\n\n",
		tn.Name, tn.Tree.Len(), len(tn.Tree.Sinks()),
		units.Format(tn.Tree.TotalCap(), "F", 3), units.Format(tn.Drive.Rtr, "Ohm", 3))

	// One shared transient measures every sink; the closed form costs
	// two tree traversals per moment order.
	exact, err := rlctree.Analyze(tn.Tree, tn.Drive, rlctree.Config{Engine: rlctree.EngineMNA})
	if err != nil {
		log.Fatal(err)
	}
	closed, err := rlctree.Analyze(tn.Tree, tn.Drive, rlctree.Config{Engine: rlctree.EngineClosed})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%6s  %12s  %12s  %9s  %12s  %9s\n",
		"sink", "MNA delay", "closed", "cl err %", "RC-only", "RC err %")
	worstClosed, worstRC := 0.0, 0.0
	for k, s := range exact.Sinks {
		c := closed.Sinks[k]
		clErr := 100 * (c.Delay - s.Delay) / s.Delay
		rcErr := 100 * (c.DelayRC - s.Delay) / s.Delay
		worstClosed = math.Max(worstClosed, math.Abs(clErr))
		worstRC = math.Max(worstRC, math.Abs(rcErr))
		fmt.Printf("%6d  %12s  %12s  %+8.2f%%  %12s  %+8.2f%%\n",
			s.Node, units.Format(s.Delay, "s", 4), units.Format(c.Delay, "s", 4),
			clErr, units.Format(c.DelayRC, "s", 4), rcErr)
	}
	fmt.Printf("\nworst closed-form error %.2f%%, worst RC-only error %.2f%%\n", worstClosed, worstRC)
	fmt.Printf("critical delay %s, skew %s (RC-only flow would predict skew %s, %+.1f%%)\n\n",
		units.Format(exact.MaxDelay, "s", 4), units.Format(exact.MaxSkew, "s", 4),
		units.Format(exact.MaxSkewRC, "s", 4), exact.SkewErrPct)

	// Process view: 30 sibling trees × corners × Monte Carlo draws.
	trees, err := netgen.RandomTreeBatch(42, node, netgen.TreeClockH, 16, 30)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sweep.RunTrees(trees, sweep.Config{
		Corners: sweep.DefaultCorners(),
		MC:      sweep.MonteCarlo{Samples: 4, Seed: 7, RSigma: 0.08, CSigma: 0.08, DriveSigma: 0.1},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := res.RenderSummary(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
