// Techscaling: the paper's Section IV conclusion, replayed across a
// five-node technology table — as gate parasitics R0·C0 shrink, T_{L/R}
// grows and the cost of RC-only repeater design rises.
//
// Run with: go run ./examples/techscaling
package main

import (
	"fmt"
	"log"
	"os"

	"rlckit/internal/netgen"
	"rlckit/internal/repeater"
	"rlckit/internal/report"
	"rlckit/internal/tech"
	"rlckit/internal/units"
)

func main() {
	// The same physical clock wire (20 mm, 2.5x-wide 250nm geometry),
	// driven by each node's buffers.
	wire := tech.Default().GlobalWire
	wire.Width *= 2.5
	spine, err := wire.Line(units.MilliMeter(20))
	if err != nil {
		log.Fatal(err)
	}
	_ = netgen.TLRSweep // see netgen for synthetic sweeps at exact T values
	tb := report.NewTable("Cost of ignoring inductance across technology nodes (fixed 20 mm clock wire)",
		"node", "R0C0", "T_{L/R}", "RC plan k", "RLC plan k",
		"delay cost vs optimum %", "area cost %")
	for _, node := range tech.All() {
		buf := node.Buffer()
		tlr, err := repeater.TLR(spine, buf)
		if err != nil {
			log.Fatal(err)
		}
		_, kRC, err := repeater.BakogluHK(spine, buf)
		if err != nil {
			log.Fatal(err)
		}
		_, kRLC, err := repeater.ClosedFormHK(spine, buf)
		if err != nil {
			log.Fatal(err)
		}
		// Grade the RC-blind plan against the exact-engine optimum: the
		// honest, monotone version of the paper's Eq. 16 trend.
		dvo, err := repeater.DelayIncreaseVsOptimum(spine, buf)
		if err != nil {
			log.Fatal(err)
		}
		tb.AddRow(node.Name, units.Format(node.R0*node.C0, "s", 3), tlr,
			kRC, kRLC, dvo, repeater.AreaIncrease(tlr))
	}
	if err := tb.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nT_{L/R} grows as R0·C0 shrinks: every generation makes the RC-only")
	fmt.Println("repeater methodology more expensive — the paper's closing argument.")
}
