// Netaudit: screen a population of nets for inductance significance —
// the flow a timing team would run to decide which nets get RLC
// extraction (the paper's introduction: "criteria to determine which
// nets should consider on-chip inductance have been described in [7]
// and [8]").
//
// The example draws 200 reproducible random nets at 250 nm and runs
// them through the chip-scale sweep engine (internal/sweep): population
// screening statistics, RC-vs-RLC delay-error percentiles and a process
// corner breakdown come from one engine call. It then drills into the
// most underdamped flagged nets and quantifies, against the exact
// transmission-line engine, how wrong the RC-only delay would have been.
//
// Run with: go run ./examples/netaudit
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"rlckit/internal/core"
	"rlckit/internal/elmore"
	"rlckit/internal/netgen"
	"rlckit/internal/refeng"
	"rlckit/internal/report"
	"rlckit/internal/sweep"
	"rlckit/internal/tech"
	"rlckit/internal/units"
)

func main() {
	node := tech.Default()
	nets, err := netgen.RandomBatch(2026, node, 200)
	if err != nil {
		log.Fatal(err)
	}
	riseTime := 8 * node.R0 * node.C0

	// One engine call replaces the hand-rolled screening loop: nominal
	// corner, no Monte Carlo — the population itself is the experiment.
	res, err := sweep.Run(nets, sweep.Config{RiseTime: riseTime})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Screened %d nets at %s (input rise %s): %d need RLC analysis\n\n",
		res.Screen.Total, node.Name, units.Format(riseTime, "s", 3), res.Screen.NeedsRLC)
	if err := res.RenderSummary(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Rank the flagged nets by damping factor (most underdamped first)
	// and grade the closed forms against the exact engine on the worst
	// few.
	var hits []sweep.Sample
	for _, s := range res.Samples {
		if s.NeedsRLC {
			hits = append(hits, s)
		}
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].Zeta < hits[j].Zeta })
	if len(hits) > 8 {
		hits = hits[:8]
	}
	fmt.Println()
	tb := report.NewTable("Most inductance-critical nets (closed-form timing errors vs simulation)",
		"net", "zeta", "RT", "window", "in Eq.9 domain", "sim delay", "Eq.9 err%", "Sakurai-RC err%")
	for _, h := range hits {
		sim, err := refeng.DelayExactTF(h.Line, h.Drive, 0)
		if err != nil {
			log.Fatal(err)
		}
		rlc, err := core.Delay(h.Line, h.Drive)
		if err != nil {
			log.Fatal(err)
		}
		p, err := core.Analyze(h.Line, h.Drive)
		if err != nil {
			log.Fatal(err)
		}
		rt, _, ct := h.Line.Totals()
		rc := elmore.Sakurai50(rt, ct, h.Drive.Rtr, h.Drive.CL)
		domain := "no"
		if p.InAccuracyDomain() {
			domain = "yes"
		}
		window := "no"
		if h.InWindow {
			window = "yes"
		}
		tb.AddRow(res.NetNames[h.Net], h.Zeta, p.RT, window, domain, units.Format(sim, "s", 4),
			100*(rlc-sim)/sim, 100*(rc-sim)/sim)
	}
	if err := tb.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nFlagged nets either sit outside the Eq. 9 accuracy domain (RT > 1: strong")
	fmt.Println("drivers on short low-R wires) or inside its reflection-plateau regime")
	fmt.Println("(RT ≈ 1, small CT, ζ ≈ 1), where the response stalls near V/2 between wave")
	fmt.Println("reflections and no smooth closed form tracks the 50% crossing. That is why")
	fmt.Println("screening matters: these nets need the exact engines (or a full simulator).")
}
