// Netaudit: screen a population of nets for inductance significance —
// the flow a timing team would run to decide which nets get RLC
// extraction (the paper's introduction: "criteria to determine which
// nets should consider on-chip inductance have been described in [7]
// and [8]").
//
// The example draws 200 reproducible random nets at 250 nm, screens
// them, and for the flagged nets quantifies how wrong the RC-only delay
// would have been.
//
// Run with: go run ./examples/netaudit
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"rlckit/internal/core"
	"rlckit/internal/elmore"
	"rlckit/internal/netgen"
	"rlckit/internal/refeng"
	"rlckit/internal/report"
	"rlckit/internal/screen"
	"rlckit/internal/tech"
	"rlckit/internal/units"
)

func main() {
	node := tech.Default()
	nets, err := netgen.RandomBatch(2026, node, 200)
	if err != nil {
		log.Fatal(err)
	}
	riseTime := 8 * node.R0 * node.C0

	type flagged struct {
		net  netgen.Net
		res  screen.Result
		zeta float64
	}
	var hits []flagged
	for _, n := range nets {
		r, err := screen.Check(n.Line, n.Drive, riseTime)
		if err != nil {
			log.Fatal(err)
		}
		if r.NeedsRLC {
			hits = append(hits, flagged{net: n, res: r, zeta: r.Zeta})
		}
	}
	fmt.Printf("Screened %d nets at %s (input rise %s): %d need RLC analysis\n\n",
		len(nets), node.Name, units.Format(riseTime, "s", 3), len(hits))

	// Rank by damping factor (most underdamped first) and quantify the
	// RC model's error on the worst few.
	sort.Slice(hits, func(i, j int) bool { return hits[i].zeta < hits[j].zeta })
	if len(hits) > 8 {
		hits = hits[:8]
	}
	tb := report.NewTable("Most inductance-critical nets (closed-form timing errors vs simulation)",
		"net", "zeta", "RT", "window", "in Eq.9 domain", "sim delay", "Eq.9 err%", "Sakurai-RC err%")
	for _, h := range hits {
		sim, err := refeng.DelayExactTF(h.net.Line, h.net.Drive, 0)
		if err != nil {
			log.Fatal(err)
		}
		rlc, err := core.Delay(h.net.Line, h.net.Drive)
		if err != nil {
			log.Fatal(err)
		}
		p, err := core.Analyze(h.net.Line, h.net.Drive)
		if err != nil {
			log.Fatal(err)
		}
		rt, _, ct := h.net.Line.Totals()
		rc := elmore.Sakurai50(rt, ct, h.net.Drive.Rtr, h.net.Drive.CL)
		domain := "no"
		if p.InAccuracyDomain() {
			domain = "yes"
		}
		window := "no"
		if h.res.InWindow {
			window = "yes"
		}
		tb.AddRow(h.net.Name, h.zeta, p.RT, window, domain, units.Format(sim, "s", 4),
			100*(rlc-sim)/sim, 100*(rc-sim)/sim)
	}
	if err := tb.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nFlagged nets either sit outside the Eq. 9 accuracy domain (RT > 1: strong")
	fmt.Println("drivers on short low-R wires) or inside its reflection-plateau regime")
	fmt.Println("(RT ≈ 1, small CT, ζ ≈ 1), where the response stalls near V/2 between wave")
	fmt.Println("reflections and no smooth closed form tracks the 50% crossing. That is why")
	fmt.Println("screening matters: these nets need the exact engines (or a full simulator).")
}
