// Quickstart: analyze one global wire with rlckit.
//
// It builds the paper's canonical driven line, computes the closed-form
// RLC delay (Eq. 9), compares it with the RC-only estimate a classic
// timing flow would use, and verifies both against a dynamic simulation.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rlckit/internal/core"
	"rlckit/internal/elmore"
	"rlckit/internal/refeng"
	"rlckit/internal/tline"
	"rlckit/internal/units"
)

func main() {
	// A 10 mm global wire: 1 kΩ, 100 nH, 1 pF total, driven by a gate
	// with 500 Ω output resistance into a 0.5 pF receiver.
	line := tline.FromTotals(
		units.KiloOhm(1), units.NanoHenry(100), units.PicoFarad(1),
		units.MilliMeter(10))
	gate := tline.Drive{Rtr: units.Ohm(500), CL: units.PicoFarad(0.5)}

	// Step 1: the dimensionless picture.
	p, err := core.Analyze(line, gate)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RT=%.2f CT=%.2f  ζ=%.3f (%s)  ωn=%.3g rad/s\n",
		p.RT, p.CT, p.Zeta, p.Classify(), p.OmegaN)

	// Step 2: closed-form delay (Eq. 9) vs the RC-only baseline.
	rlc, err := core.Delay(line, gate)
	if err != nil {
		log.Fatal(err)
	}
	rt, _, ct := line.Totals()
	rc := elmore.Sakurai50(rt, ct, gate.Rtr, gate.CL)
	fmt.Printf("Eq. 9 (RLC) delay:   %s\n", units.Format(rlc, "s", 4))
	fmt.Printf("Sakurai (RC) delay:  %s\n", units.Format(rc, "s", 4))

	// Step 3: check against a dynamic simulation (exact transfer
	// function, numerically inverted — rlckit's AS/X stand-in).
	sim, err := refeng.DelayExactTF(line, gate, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Simulated delay:     %s\n", units.Format(sim, "s", 4))
	fmt.Printf("Eq. 9 error: %+.2f%%   RC-only error: %+.2f%%\n",
		100*(rlc-sim)/sim, 100*(rc-sim)/sim)
}
