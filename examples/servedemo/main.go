// Servedemo: rlckit as a design-time HTTP service.
//
// It boots the serving layer (the same one cmd/rlckitd wraps) on an
// ephemeral port, then asks it the paper's three questions about a
// 10 mm global wire — does inductance matter, what is the delay, how
// do I size repeaters — and repeats the delay request to show the
// response cache answering from memory.
//
// Run with: go run ./examples/servedemo
package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"

	"rlckit/internal/serve"
)

func post(base, path, body string) (string, string) {
	resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != 200 {
		log.Fatalf("%s: %d: %s", path, resp.StatusCode, b)
	}
	return strings.TrimSpace(string(b)), resp.Header.Get("X-Cache")
}

func main() {
	s := serve.New(serve.Config{})
	defer s.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, s.Handler())
	base := "http://" + ln.Addr().String()
	fmt.Println("serving on", base)

	line := `"line":{"rt":1000,"lt":1e-7,"ct":1e-12,"length":0.01}`
	drive := `"drive":{"rtr":500,"cl":5e-13}`

	// Does inductance matter for this net at a 50 ps input rise time?
	body, _ := post(base, "/v1/screen", `{`+line+`,`+drive+`,"rise_s":5e-11}`)
	fmt.Println("\nscreen:   ", body)

	// What is the delay — and what would an RC-only flow have said?
	body, cache := post(base, "/v1/delay", `{`+line+`,`+drive+`}`)
	fmt.Printf("\ndelay:     %s\n  (X-Cache: %s)\n", body, cache)

	// The same question again: served from the canonical-key cache.
	body, cache = post(base, "/v1/delay", `{`+drive+`,`+line+`}`)
	fmt.Printf("  again:   %d bytes, X-Cache: %s\n", len(body), cache)

	// How should this line be broken up with repeaters at 250 nm?
	body, _ = post(base, "/v1/repeaters", `{`+line+`,"node":"250nm"}`)
	fmt.Println("\nrepeaters:", body)

	st := s.Stats()
	fmt.Printf("\nserver stats: requests=%v cache hits=%d misses=%d\n",
		st.Requests, st.Cache.Hits, st.Cache.Misses)
}
