// Servedemo: rlckit as a design-time HTTP service.
//
// It boots the serving layer (the same one cmd/rlckitd wraps) on an
// ephemeral port, then asks it the paper's three questions about a
// 10 mm global wire — does inductance matter, what is the delay, how
// do I size repeaters — through the retrying client (internal/client),
// and repeats the delay request to show the response cache answering
// from memory. It closes with the robustness features: a request that
// is too big for its deadline comes back degraded to a cheaper
// estimator, and a canceled request frees its worker mid-compute.
//
// Run with: go run ./examples/servedemo
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"rlckit/internal/client"
	"rlckit/internal/serve"
)

func post(c *client.Client, path, body string) (string, string) {
	resp, err := c.PostJSON(context.Background(), path, []byte(body))
	if err != nil {
		log.Fatal(err)
	}
	if resp.Status != 200 {
		log.Fatalf("%s: %d: %s", path, resp.Status, resp.Body)
	}
	return strings.TrimSpace(string(resp.Body)), resp.Cache
}

func main() {
	// RequestTimeout is the server-side compute budget (the -request-
	// timeout flag on rlckitd): big requests degrade to cheaper
	// estimators instead of timing out.
	s, err := serve.New(serve.Config{RequestTimeout: 300 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, s.Handler())
	base := "http://" + ln.Addr().String()
	c := client.New(base, client.Config{})
	fmt.Println("serving on", base)

	line := `"line":{"rt":1000,"lt":1e-7,"ct":1e-12,"length":0.01}`
	drive := `"drive":{"rtr":500,"cl":5e-13}`

	// Does inductance matter for this net at a 50 ps input rise time?
	body, _ := post(c, "/v1/screen", `{`+line+`,`+drive+`,"rise_s":5e-11}`)
	fmt.Println("\nscreen:   ", body)

	// What is the delay — and what would an RC-only flow have said?
	body, cache := post(c, "/v1/delay", `{`+line+`,`+drive+`}`)
	fmt.Printf("\ndelay:     %s\n  (X-Cache: %s)\n", body, cache)

	// The same question again: served from the canonical-key cache.
	body, cache = post(c, "/v1/delay", `{`+drive+`,`+line+`}`)
	fmt.Printf("  again:   %d bytes, X-Cache: %s\n", len(body), cache)

	// How should this line be broken up with repeaters at 250 nm?
	body, _ = post(c, "/v1/repeaters", `{`+line+`,"node":"250nm"}`)
	fmt.Println("\nrepeaters:", body)

	// Deadline-aware degradation: a Monte Carlo sweep with the slow
	// circuit-simulation estimator cannot finish inside the server's
	// 300 ms budget, so it answers with a cheaper estimator and says so.
	resp, err := c.PostJSON(context.Background(), "/v1/sweep",
		[]byte(`{"node":"250nm","nets":5000,"seed":7,"rise_s":5e-11,"estimator":"simulated"}`))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsweep under the 300ms budget (asked for \"simulated\"):\n  status %d: %.160s...\n",
		resp.Status, resp.Body)

	// Cancellation: abandon a bigger sweep almost immediately — the
	// server notices the disconnect at the next per-sample checkpoint
	// and frees the workers for other requests.
	ctx, stop := context.WithTimeout(context.Background(), 2*time.Millisecond)
	_, err = c.PostJSON(ctx, "/v1/sweep",
		[]byte(`{"node":"250nm","nets":50000,"samples":3,"seed":8,"rise_s":5e-11,"estimator":"simulated"}`))
	stop()
	fmt.Printf("\ncanceled sweep: %v\n", err)
	for i := 0; i < 100 && s.Stats().Canceled == 0; i++ {
		time.Sleep(10 * time.Millisecond) // wait for the engine checkpoint to notice
	}

	st := s.Stats()
	fmt.Printf("\nserver stats: requests=%v cache hits=%d misses=%d degraded=%d canceled=%d\n",
		st.Requests, st.Cache.Hits, st.Cache.Misses, st.Degraded, st.Canceled)
}
