#!/usr/bin/env bash
# Runs the gated benchmark set and collects `go test -bench` output into
# the file named by $1. Used by the CI bench job on both the PR head and
# the base commit; packages that don't exist yet on the base commit are
# skipped (benchgate treats their benchmarks as new).
set -euo pipefail
out=$1
: > "$out"

run_bench() {
  local pattern=$1 pkg=$2
  go test -bench "$pattern" -benchmem -count 6 -benchtime 0.3s -run '^$' "$pkg" | tee -a "$out"
}

run_bench 'BenchmarkMNADelay$' .
run_bench 'BenchmarkSweep10k$' ./internal/sweep
if [ -d internal/serve ]; then
  run_bench 'BenchmarkServe(DelayHot|DelayCold|Sweep)$' ./internal/serve
fi
# Reduced-order engine benches (absent on commits predating internal/mor;
# benchgate then treats them as new).
if [ -d internal/mor ]; then
  run_bench 'Benchmark(ACReduced|ACExact2000|MORBuild)$' ./internal/mna
fi
# RLC-tree benches (absent on commits predating internal/rlctree).
if [ -d internal/rlctree ]; then
  run_bench 'BenchmarkTreeDelay$' ./internal/rlctree
  run_bench 'BenchmarkTreeSweep$' ./internal/sweep
fi
# What-if session bench (absent on commits predating internal/session).
if [ -d internal/session ]; then
  run_bench 'BenchmarkWhatIfEditSequence$' ./internal/session
fi
