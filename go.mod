module rlckit

go 1.24
