// Package rlckit is a Go reproduction of "Effects of Inductance on the
// Propagation Delay and Repeater Insertion in VLSI Circuits" (Ismail &
// Friedman, DAC 1999).
//
// The library lives under internal/:
//
//   - core      — the paper's closed-form RLC delay model (ζ, ωn, Eq. 9)
//   - repeater  — RLC-aware repeater insertion (Eqs. 11, 13-18)
//   - tline     — distributed-line models (ladders, exact transfer fn)
//   - mna       — transient circuit simulator (the AS/X stand-in)
//   - ratfun    — pole/residue analytic step responses
//   - laplace   — numerical inverse Laplace (Euler, Talbot)
//   - refeng    — the three cross-validated reference delay engines
//   - elmore    — RC-tree Elmore/Sakurai baselines
//   - tech      — technology nodes and wire-geometry parasitics
//   - paper     — regeneration of every table/figure (E1-E9)
//   - circuit, waveform, numeric, units, netgen, netlist, report — substrates
//
// Executables: cmd/rlcdelay, cmd/repeaterplan, cmd/netsim, cmd/paperfigs.
// Runnable examples: examples/quickstart, examples/clocktree,
// examples/busdesign, examples/techscaling.
//
// The benchmark suite in bench_test.go regenerates each paper artifact;
// see DESIGN.md for the experiment index and EXPERIMENTS.md for measured
// results against the paper's printed values.
package rlckit
