// Package rlckit is a Go reproduction of "Effects of Inductance on the
// Propagation Delay and Repeater Insertion in VLSI Circuits" (Ismail &
// Friedman, DAC 1999).
//
// The library lives under internal/:
//
//   - serve     — the HTTP serving layer: /v1/{delay,screen,repeaters,
//     sweep} JSON endpoints with a canonical-key response cache and
//     micro-batched compute (wrapped by cmd/rlckitd)
//   - cache     — sharded LRU under the serving layer, keyed by the
//     canonical values of (Line, Drive, config)
//   - core      — the paper's closed-form RLC delay model (ζ, ωn, Eq. 9)
//   - repeater  — RLC-aware repeater insertion (Eqs. 11, 13-18)
//   - tline     — distributed-line models (ladders, exact transfer fn)
//   - mna       — transient circuit simulator (the AS/X stand-in)
//   - mor       — Krylov model-order reduction: certified q×q reduced
//     models evaluated per frequency point, timestep, or Monte Carlo
//     sample (mna.ACReduced, refeng.DelayReduced, the sweep's
//     reduced estimator), with exact fallback on failed certification
//   - rlctree   — multi-sink RLC trees (clock trees, routed fanout):
//     per-sink delay and skew from a moment/two-pole closed form, one
//     shared MNA transient, or a multi-output reduced model
//   - session   — stateful what-if analysis over rlctree's
//     incremental engine: open a driven tree once, stream value
//     edits, re-read per-sink delays in far less than a cold
//     analysis (OpenSession, cmd/whatif, POST /v1/session)
//   - conformance — differential cross-engine harness: seeded random
//     lines and trees through every engine, held to stated bounds in
//     a run-until-dry loop (short in PRs, long nightly)
//   - sweep     — chip-scale batch engine: nets × corners × Monte Carlo
//     samples on a worker pool, aggregated into population statistics
//     (lines via Run, trees via RunTrees)
//   - pool      — the shared bounded worker pool and deterministic
//     per-index seed derivation under every batch layer
//   - ratfun    — pole/residue analytic step responses
//   - laplace   — numerical inverse Laplace (Euler, Talbot)
//   - refeng    — the three cross-validated reference delay engines
//   - elmore    — RC-tree Elmore/Sakurai baselines
//   - tech      — technology nodes and wire-geometry parasitics
//   - paper     — regeneration of every table/figure (E1-E9)
//   - circuit, waveform, numeric, units, netgen, netlist, report,
//     golden — substrates
//
// # Chip-scale sweeps
//
// The paper's headline claim is statistical — across a population of
// nets, ignoring inductance mis-predicts delay and mis-sizes repeaters
// by double-digit percentages. SweepDelays reproduces that experiment
// at production scale:
//
//	node, _ := rlckit.Technology("250nm")
//	nets, _ := rlckit.RandomNets(1, node, 10000)
//	res, _ := rlckit.SweepDelays(nets, rlckit.SweepConfig{
//		RiseTime: 50e-12,
//		Corners:  rlckit.DefaultCorners(),
//		MC:       rlckit.SweepMonteCarlo{Samples: 8, Seed: 7, RSigma: 0.1},
//	})
//	res.RenderSummary(os.Stdout) // screening fractions, error percentiles
//
// Sweeps run on a bounded worker pool and are deterministic: the same
// seed yields byte-identical samples and aggregates at every worker
// count and GOMAXPROCS setting, because each (net, corner, draw) triple
// derives its RNG from its own seed rather than from a shared stream.
//
// # Model-order reduction
//
// The reduce-once/evaluate-everywhere fast path: internal/mor
// compresses a net's MNA system into a certified q×q model by
// PRIMA-style block Arnoldi over the passive form, and the consumers
// evaluate that model instead of re-factoring the full system — a
// 2000-unknown AC sweep at 200 points runs ~36× faster than the exact
// band engine, and Monte Carlo sweeps recombine per-class reduced
// pencils per sample in O(q²). Certification (exact validation at
// every probe frequency, for the nominal and every anchor instance)
// gates the fast path; on failure every consumer falls back to the
// exact engine. See DelayReduced, SweepEstimatorReduced, and the
// serving layer's method "reduced".
//
// # Serving
//
// cmd/rlckitd exposes the same analyses over HTTP as JSON endpoints —
// POST /v1/delay, /v1/screen, /v1/repeaters, /v1/sweep — with a
// sharded LRU response cache keyed by canonical request values,
// micro-batching of concurrent single-net requests onto the shared
// worker pool, 429 backpressure, expvar metrics and graceful
// shutdown. Responses are pure functions of the request body, so they
// are byte-identical across worker counts and cache states.
//
// # RLC trees and skew
//
// Multi-sink nets — clock trees and routed fanout — are a first-class
// workload: AnalyzeTree computes every sink's 50% delay and the
// sink-to-sink skew from one shared solve (closed-form moments, a
// single multi-probe MNA transient, or a multi-output reduced model
// with exact fallback), RandomTrees draws seeded
// balanced/unbalanced/H-tree populations, SweepTreeDelays runs
// trees × corners × Monte Carlo, and the serving layer exposes it all
// at POST /v1/tree. internal/conformance differentially tests every
// engine against every other over seeded random corpora.
//
// # Incremental what-if sessions
//
// Interactive tuning loops — resize a branch, re-read the skew —
// re-analyze the same tree hundreds of times with tiny diffs.
// OpenSession keeps the analysis state live between edits: the closed
// form re-runs its moment sweeps in a reused workspace with memoized
// crossing searches, the exact MNA path re-stamps edited values into a
// frozen-ordering factorization, and the reduced path reprojects the
// frozen Krylov basis in O(q²) inside a certified parameter envelope
// (re-certifying when an edit leaves it, and falling back to the exact
// engine when re-certification or a time-domain stability check
// fails). Closed and MNA session results are bit-identical to a cold
// AnalyzeTree of the edited tree; the reduced path holds the certified
// tolerance. cmd/whatif replays JSON edit scripts through a session,
// and the serving layer exposes sessions at POST /v1/session with TTL
// and LRU-capacity eviction.
//
// Executables: cmd/rlcdelay, cmd/repeaterplan, cmd/netsim,
// cmd/paperfigs, cmd/netsweep (the sweep engine's CLI: population
// summary tables plus per-sample CSV), cmd/treeskew (per-sink tree
// delay/skew tables and tree population sweeps), cmd/whatif (replays
// what-if edit scripts through an incremental session), cmd/rlckitd
// (the HTTP serving daemon), cmd/benchgate (CI's benchmark-regression
// gate).
// Runnable examples: examples/quickstart, examples/clocktree,
// examples/busdesign, examples/techscaling, examples/netaudit,
// examples/servedemo.
//
// The benchmark suite in bench_test.go regenerates each paper artifact;
// see DESIGN.md for the experiment index and EXPERIMENTS.md for measured
// results against the paper's printed values.
package rlckit
